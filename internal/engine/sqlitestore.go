package engine

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// SQLiteStore file format. The container has no SQL driver and the project
// vendors no dependencies, so "sqlite:" is served by a dependency-free
// single-file store with the properties the topology actually needs from
// SQLite: one schema-versioned file on a shared mount, WAL-style crash
// recovery (a torn tail is detected by checksum and rolled back on the next
// open or write), and multi-process safety via advisory file locks. The
// format is an append-only record log:
//
//	header:  magic "CVK1" | schema uint32 (little-endian)
//	record:  kind byte | uvarint keylen | key | uvarint vallen | value |
//	         crc32c uint32 over everything before it in the record
//
// Record kinds are campaign, result, job, and lease; the latest record for
// a (kind, key) pair wins, and a lease record with an empty owner is a
// release. The log is never rewritten in place, so concurrent handles only
// ever contend on where the tail is — which the per-batch flock
// serialises.
const (
	sqliteMagic  = "CVK1"
	sqliteSchema = uint32(1)

	recCampaign = byte(1)
	recResult   = byte(2)
	recJob      = byte(3)
	recLease    = byte(4)
)

// sqliteMaxRecord bounds one record's key+value size — far above any real
// record, low enough that a corrupted length prefix cannot make a reader
// attempt a multi-gigabyte allocation.
const sqliteMaxRecord = 64 << 20

// SQLiteStore is the shared single-file Store. Every handle — in this
// process or another — keeps an in-memory table of the log's latest state
// and catches up by scanning the log's unread tail before each operation,
// under a shared or exclusive advisory lock on the file (reads skip even
// that when a stat shows the file unmoved since the last scan). Mutations
// are group-committed: concurrent transactions queue, and a leader drains
// the queue under one exclusive lock, appends every staged record with one
// WriteAt, and fsyncs once for the whole batch — callers are acknowledged
// only after that fsync, so an acknowledged write is durable and a torn one
// is rolled back (truncated by the next writer), never served. The single
// exception is a batch of nothing but lease records, which commits without
// the fsync: lease durability is worthless (a crash losing a lease is the
// TTL-steal path working as designed) and sibling processes read the page
// cache, not the platter. The log is
// append-only and is not compacted; for the record volumes the engine
// writes (one campaign record per state transition, one result, one record
// per job) growth is modest, and a fresh file starts a new log.
type SQLiteStore struct {
	mu   sync.Mutex
	f    *os.File
	path string
	logf func(format string, args ...any)

	// scanned is the log offset up to which tables below reflect the file.
	scanned int64
	// statSize is the file size observed by the last scan; a read whose
	// stat matches it skips the flock/scan round-trip entirely (the log
	// below statSize is immutable).
	statSize  int64
	campaigns map[string][]byte
	results   map[string][]byte
	jobs      map[string][]byte
	leases    map[string]lease

	// qmu guards the group-commit queue. Transactions enqueue here; the
	// first enqueuer becomes the leader and commits batches until the
	// queue drains.
	qmu     sync.Mutex
	queue   []*storeTxn
	leading bool
	closed  bool

	// signal wakes in-process lease waiters when a batch changed a lease
	// or published a job record.
	signal leaseSignal

	// fsyncs counts fsync(2) calls over the store's lifetime — the cost
	// the group committer exists to collapse. Always maintained;
	// fsyncCtr/batchSize mirror it into a registry once instrumented.
	fsyncs    atomic.Uint64
	rescans   atomic.Uint64 // reads that had to take the flock and re-scan
	fsyncCtr  *obs.Counter
	batchSize *obs.Histogram

	// syncHook, when set (tests only), replaces the fsync so commit
	// failures can be injected between staging and acknowledgement.
	syncHook func() error
}

// storeTxn is one mutation queued for the group committer: the transaction
// body, and the channel its caller blocks on until the batch holding it is
// durable (or failed).
type storeTxn struct {
	run  func(v *txnView) error
	err  error
	done chan struct{}
}

// txnView is the state one batched transaction reads and stages against:
// the durable tables plus every record staged by earlier transactions in
// the same batch. Staging appends the encoded record to the batch buffer
// and records it in the overlay, so later transactions in a batch observe
// earlier ones exactly as a later reader of the log will — fold order is
// append order.
type txnView struct {
	s   *SQLiteStore
	buf []byte

	campaigns map[string][]byte
	results   map[string][]byte
	jobs      map[string][]byte
	leases    map[string]lease // zero Owner = staged release tombstone
	touched   bool             // a lease or job record was staged; waiters care
	// needSync marks a batch holding data records (campaigns, results,
	// jobs), whose acknowledgement promises durability. A lease-only batch
	// skips the fsync: leases are coordination state, visible to sibling
	// processes through the page cache the instant WriteAt returns, and a
	// machine crash that loses them merely triggers the TTL-steal path the
	// protocol already defines — durability buys nothing there but an
	// fsync per acquire, renew, and release.
	needSync bool
}

// campaign reads id through the overlay.
func (v *txnView) campaign(id string) ([]byte, bool) {
	if b, ok := v.campaigns[id]; ok {
		return b, true
	}
	b, ok := v.s.campaigns[id]
	return b, ok
}

// job reads key through the overlay.
func (v *txnView) job(key string) ([]byte, bool) {
	if b, ok := v.jobs[key]; ok {
		return b, true
	}
	b, ok := v.s.jobs[key]
	return b, ok
}

// lease reads key's lease through the overlay; a staged tombstone reads as
// absent.
func (v *txnView) lease(key string) (lease, bool) {
	if l, ok := v.leases[key]; ok {
		if l.Owner == "" {
			return lease{}, false
		}
		return l, true
	}
	l, ok := v.s.leases[key]
	return l, ok
}

// stage appends one non-lease record to the batch and the overlay.
func (v *txnView) stage(kind byte, key string, val []byte) {
	v.buf = appendRecord(v.buf, kind, key, val)
	v.needSync = true
	switch kind {
	case recCampaign:
		v.campaigns[key] = val
	case recResult:
		v.results[key] = val
	case recJob:
		v.jobs[key] = val
		v.touched = true
	}
}

// stageLease appends one lease record; a zero-Owner lease is the release
// tombstone.
func (v *txnView) stageLease(key string, l lease) error {
	b, err := json.Marshal(l)
	if err != nil {
		return err
	}
	v.buf = appendRecord(v.buf, recLease, key, b)
	v.leases[key] = l
	v.touched = true
	return nil
}

// OpenSQLiteStore opens (creating if needed) the shared single-file store
// at path. logf receives corruption warnings; nil means the standard
// logger.
func OpenSQLiteStore(path string, logf func(format string, args ...any)) (*SQLiteStore, error) {
	if logf == nil {
		logf = log.Printf
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("engine: opening store file: %w", err)
	}
	s := &SQLiteStore{
		f:         f,
		path:      path,
		logf:      logf,
		campaigns: map[string][]byte{},
		results:   map[string][]byte{},
		jobs:      map[string][]byte{},
		leases:    map[string]lease{},
	}
	if err := s.initHeader(); err != nil {
		f.Close()
		return nil, err
	}
	s.statSize = s.scanned
	return s, nil
}

// Path returns the store's file path.
func (s *SQLiteStore) Path() string { return s.path }

// Fsyncs returns how many fsync(2) calls the store has issued since open —
// one per committed batch plus header initialisation. The benchmark suite
// divides it by executed jobs.
func (s *SQLiteStore) Fsyncs() uint64 { return s.fsyncs.Load() }

// instrument implements storeInstrumenter: the group committer's fsync and
// batch-size meters.
func (s *SQLiteStore) instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fsyncCtr = r.Counter("cherivoke_store_fsyncs_total",
		"fsync(2) calls issued by the shared single-file store (one per committed batch).")
	s.batchSize = r.Histogram("cherivoke_store_batch_size",
		"Mutations folded into one group-committed store batch.",
		obs.ExpBuckets(1, 2, 8))
}

// Close releases the store's file handle. Operations after Close fail.
func (s *SQLiteStore) Close() error {
	s.qmu.Lock()
	s.closed = true
	s.qmu.Unlock()
	// Taking mu waits out a batch commit in flight; a leader that grabs a
	// later batch fails cleanly on the closed descriptor.
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// initHeader writes the file header if the file is empty, or validates it
// otherwise, under an exclusive lock so two processes creating the same
// file serialise.
func (s *SQLiteStore) initHeader() error {
	if err := flockExclusive(s.f); err != nil {
		return fmt.Errorf("engine: locking store file: %w", err)
	}
	defer funlock(s.f)
	st, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("engine: store file: %w", err)
	}
	if st.Size() == 0 {
		var hdr [8]byte
		copy(hdr[:4], sqliteMagic)
		binary.LittleEndian.PutUint32(hdr[4:], sqliteSchema)
		if _, err := s.f.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("engine: writing store header: %w", err)
		}
		if err := s.sync(); err != nil {
			return fmt.Errorf("engine: writing store header: %w", err)
		}
		s.scanned = int64(len(hdr))
		return nil
	}
	var hdr [8]byte
	if _, err := io.ReadFull(io.NewSectionReader(s.f, 0, 8), hdr[:]); err != nil {
		return fmt.Errorf("engine: %s is not a cherivoke store file: %w", s.path, err)
	}
	if string(hdr[:4]) != sqliteMagic {
		return fmt.Errorf("engine: %s is not a cherivoke store file (bad magic)", s.path)
	}
	if got := binary.LittleEndian.Uint32(hdr[4:]); got != sqliteSchema {
		return fmt.Errorf("engine: %s has store schema %d, this binary speaks %d", s.path, got, sqliteSchema)
	}
	s.scanned = int64(len(hdr))
	return nil
}

// sync flushes the file, counting the fsync. syncHook substitutes failures
// in tests.
func (s *SQLiteStore) sync() error {
	s.fsyncs.Add(1)
	s.fsyncCtr.Inc()
	if s.syncHook != nil {
		return s.syncHook()
	}
	return s.f.Sync()
}

// appendRecord encodes one record into buf-appendable form.
func appendRecord(dst []byte, kind byte, key string, val []byte) []byte {
	start := len(dst)
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(val)))
	dst = append(dst, val...)
	sum := crc32.Checksum(dst[start:], crc32.MakeTable(crc32.Castagnoli))
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// apply folds one decoded record into the in-memory tables.
func (s *SQLiteStore) apply(kind byte, key string, val []byte) {
	switch kind {
	case recCampaign:
		s.campaigns[key] = append([]byte(nil), val...)
	case recResult:
		s.results[key] = append([]byte(nil), val...)
	case recJob:
		s.jobs[key] = append([]byte(nil), val...)
	case recLease:
		var l lease
		if err := json.Unmarshal(val, &l); err != nil {
			s.logf("engine: skipping corrupted lease record for %q: %v", key, err)
			return
		}
		if l.Owner == "" {
			delete(s.leases, key)
		} else {
			s.leases[key] = l
		}
	default:
		s.logf("engine: skipping record of unknown kind %d", kind)
	}
}

// catchUp scans the log from s.scanned to EOF, folding every complete,
// checksum-valid record into the tables. A torn or corrupt tail stops the
// scan: s.scanned is left at the last good boundary, and tornAt reports
// that offset so a writer (holding the exclusive lock) can truncate the
// tail away — the crash-recovery "WAL replay". Callers must hold at least
// a shared flock on s.f.
func (s *SQLiteStore) catchUp() (tornAt int64, torn bool, err error) {
	st, err := s.f.Stat()
	if err != nil {
		return 0, false, fmt.Errorf("engine: store file: %w", err)
	}
	size := st.Size()
	s.statSize = size
	if size <= s.scanned {
		return 0, false, nil
	}
	base := s.scanned
	r := io.NewSectionReader(s.f, base, size-base)
	br := &countingByteReader{r: r}
	for {
		recStart := base + br.n
		kind, key, val, ok, err := readOneRecord(br)
		if err != nil {
			return 0, false, err
		}
		if !ok {
			if recStart < size {
				return recStart, true, nil
			}
			return 0, false, nil
		}
		s.apply(kind, key, val)
		s.scanned = base + br.n
	}
}

// countingByteReader adapts an io.Reader into the ByteReader binary.Uvarint
// needs while tracking how many bytes were consumed.
type countingByteReader struct {
	r   io.Reader
	n   int64
	buf [1]byte
}

// ReadByte implements io.ByteReader.
func (c *countingByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(c.r, c.buf[:]); err != nil {
		return 0, err
	}
	c.n++
	return c.buf[0], nil
}

// Read implements io.Reader.
func (c *countingByteReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readOneRecord decodes one record from br. ok is false — with a nil
// error — when the remaining bytes do not form a complete valid record:
// a torn tail, not a failure.
func readOneRecord(br *countingByteReader) (kind byte, key string, val []byte, ok bool, err error) {
	kind, rerr := br.ReadByte()
	if rerr != nil {
		return 0, "", nil, false, nil
	}
	sum := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	sum.Write([]byte{kind})
	keyLen, rerr := readUvarint(br, sum)
	if rerr != nil || keyLen > sqliteMaxRecord {
		return 0, "", nil, false, nil
	}
	keyBuf := make([]byte, keyLen)
	if _, rerr := io.ReadFull(br, keyBuf); rerr != nil {
		return 0, "", nil, false, nil
	}
	sum.Write(keyBuf)
	valLen, rerr := readUvarint(br, sum)
	if rerr != nil || valLen > sqliteMaxRecord {
		return 0, "", nil, false, nil
	}
	val = make([]byte, valLen)
	if _, rerr := io.ReadFull(br, val); rerr != nil {
		return 0, "", nil, false, nil
	}
	sum.Write(val)
	var crcBuf [4]byte
	if _, rerr := io.ReadFull(br, crcBuf[:]); rerr != nil {
		return 0, "", nil, false, nil
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != sum.Sum32() {
		return 0, "", nil, false, nil
	}
	return kind, string(keyBuf), val, true, nil
}

// readUvarint reads a uvarint from br, feeding the consumed bytes into sum.
func readUvarint(br *countingByteReader, sum io.Writer) (uint64, error) {
	var x uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		sum.Write([]byte{b})
		if b < 0x80 {
			return x | uint64(b)<<shift, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, fmt.Errorf("engine: uvarint overflow")
}

// readView runs fn over the in-memory tables, first catching them up with
// the log. The clean fast path is one fstat: when the file size matches the
// last scan's, nothing was appended — the log below that offset is
// immutable (appends only grow the file; truncation only removes torn
// bytes past every validated record boundary), so the tables are current
// and the flock/scan round-trip is skipped. A torn tail observed under the
// shared lock is simply not folded in — the next writer truncates it.
func (s *SQLiteStore) readView(fn func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrStore, s.path, err)
	}
	if st.Size() == s.statSize {
		return fn()
	}
	s.rescans.Add(1)
	if err := flockShared(s.f); err != nil {
		return fmt.Errorf("%w: locking %s: %v", ErrStore, s.path, err)
	}
	defer funlock(s.f)
	if _, _, err := s.catchUp(); err != nil {
		return fmt.Errorf("%w: reading %s: %v", ErrStore, s.path, err)
	}
	return fn()
}

// writeTxn queues run for the group committer and blocks until the batch
// holding it is durable. The first transaction to find no leader becomes
// one: it drains the queue in batches — each batch one exclusive lock, one
// WriteAt, one fsync — until the queue is empty, committing transactions
// that arrived while it worked along the way. run sees the tables current
// (plus the batch overlay) under the exclusive file lock, so
// read-modify-write sequences (conditional create, lease acquire) are
// atomic across processes.
func (s *SQLiteStore) writeTxn(run func(v *txnView) error) error {
	t := &storeTxn{run: run, done: make(chan struct{})}
	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		return fmt.Errorf("%w: %s is closed", ErrStore, s.path)
	}
	s.queue = append(s.queue, t)
	if s.leading {
		s.qmu.Unlock()
		<-t.done
		return t.err
	}
	s.leading = true
	for {
		batch := s.queue
		s.queue = nil
		s.qmu.Unlock()
		s.commitBatch(batch)
		s.qmu.Lock()
		if len(s.queue) == 0 {
			s.leading = false
			break
		}
	}
	s.qmu.Unlock()
	<-t.done
	return t.err
}

// commitBatch runs one batch of queued transactions under a single
// exclusive-lock window and makes their staged records durable with a
// single fsync (elided entirely for lease-only batches, whose records
// need visibility, not durability — see txnView.needSync). Per-transaction failures (a lost CAS, a held lease) stage
// nothing and fail only their own caller; a batch write or sync failure
// fails every caller and discards the whole overlay — the tables keep the
// last durable state, so no caller is ever acknowledged before its bytes
// are synced. (Bytes a failed batch left behind may still be folded in by
// a later scan — error-then-visible is allowed, ack-before-durable is
// not.)
func (s *SQLiteStore) commitBatch(batch []*storeTxn) {
	s.mu.Lock()
	defer s.mu.Unlock()

	v := &txnView{
		s:         s,
		campaigns: map[string][]byte{},
		results:   map[string][]byte{},
		jobs:      map[string][]byte{},
		leases:    map[string]lease{},
	}
	err := func() error {
		if err := flockExclusive(s.f); err != nil {
			return fmt.Errorf("%w: locking %s: %v", ErrStore, s.path, err)
		}
		defer funlock(s.f)
		tornAt, torn, err := s.catchUp()
		if err != nil {
			return fmt.Errorf("%w: reading %s: %v", ErrStore, s.path, err)
		}
		if torn {
			s.logf("engine: %s: truncating torn record tail at offset %d", s.path, tornAt)
			if err := s.f.Truncate(tornAt); err != nil {
				return fmt.Errorf("%w: truncating torn tail of %s: %v", ErrStore, s.path, err)
			}
			s.statSize = tornAt
		}
		for _, t := range batch {
			t.err = t.run(v)
		}
		if len(v.buf) == 0 {
			return nil
		}
		if _, err := s.f.WriteAt(v.buf, s.scanned); err != nil {
			return fmt.Errorf("%w: appending to %s: %v", ErrStore, s.path, err)
		}
		// Lease-only batches skip the fsync — see txnView.needSync. Their
		// records are already visible to every sibling process (page
		// cache), and the next data batch's fsync makes them durable
		// incidentally.
		if v.needSync {
			if err := s.sync(); err != nil {
				return fmt.Errorf("%w: syncing %s: %v", ErrStore, s.path, err)
			}
		}
		// Durable: fold the overlay into the tables. Only now — acks
		// follow durability, never precede it.
		for id, b := range v.campaigns {
			s.campaigns[id] = b
		}
		for id, b := range v.results {
			s.results[id] = b
		}
		for key, b := range v.jobs {
			s.jobs[key] = b
		}
		for key, l := range v.leases {
			if l.Owner == "" {
				delete(s.leases, key)
			} else {
				s.leases[key] = l
			}
		}
		s.scanned += int64(len(v.buf))
		s.statSize = s.scanned
		s.batchSize.Observe(float64(len(batch)))
		return nil
	}()

	if err != nil {
		for _, t := range batch {
			if t.err == nil {
				t.err = err
			}
		}
	} else if v.touched {
		s.signal.broadcast()
	}
	for _, t := range batch {
		close(t.done)
	}
}

// putRecord validates, marshals, and appends one record.
func (s *SQLiteStore) putRecord(kind byte, key string, v any) error {
	if !validRecordName(key) {
		return fmt.Errorf("engine: invalid record name %q", key)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return s.writeTxn(func(view *txnView) error {
		if kind == recJob {
			// Job records are content-addressed: concurrent writers of one
			// key carry identical bytes, so re-appending a record the log
			// already holds would only grow the file and the batch.
			if cur, ok := view.job(key); ok && bytes.Equal(cur, b) {
				return nil
			}
		}
		view.stage(kind, key, b)
		return nil
	})
}

// getRecord reads the latest value for (table, key) into v.
func (s *SQLiteStore) getRecord(table func() map[string][]byte, key string, v any) error {
	var raw []byte
	err := s.readView(func() error {
		b, ok := table()[key]
		if !ok {
			return ErrNotFound
		}
		raw = append([]byte(nil), b...)
		return nil
	})
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, v); err != nil {
		s.logf("engine: skipping corrupted record %q in %s: %v", key, s.path, err)
		return ErrNotFound
	}
	return nil
}

// PutCampaign implements Store.
func (s *SQLiteStore) PutCampaign(c Campaign) error {
	return s.putRecord(recCampaign, c.ID, c)
}

// CreateCampaign implements Store: the existence check and the append run
// under one exclusive file lock (reading through the batch overlay, so a
// creation earlier in the same batch is visible), and creators racing from
// different processes serialise on the file — exactly one wins.
func (s *SQLiteStore) CreateCampaign(c Campaign) error {
	if !validRecordName(c.ID) {
		return fmt.Errorf("engine: invalid record name %q", c.ID)
	}
	b, err := json.Marshal(c)
	if err != nil {
		return err
	}
	return s.writeTxn(func(v *txnView) error {
		if _, ok := v.campaign(c.ID); ok {
			return fmt.Errorf("%w: campaign %s already exists", ErrConflict, c.ID)
		}
		v.stage(recCampaign, c.ID, b)
		return nil
	})
}

// Campaign implements Store.
func (s *SQLiteStore) Campaign(id string) (Campaign, error) {
	var c Campaign
	if err := s.getRecord(func() map[string][]byte { return s.campaigns }, id, &c); err != nil {
		return Campaign{}, err
	}
	return c, nil
}

// Campaigns implements Store.
func (s *SQLiteStore) Campaigns() ([]Campaign, error) {
	var encoded [][]byte
	err := s.readView(func() error {
		for _, b := range s.campaigns {
			encoded = append(encoded, append([]byte(nil), b...))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Campaign, 0, len(encoded))
	for _, b := range encoded {
		var c Campaign
		if err := json.Unmarshal(b, &c); err != nil {
			s.logf("engine: skipping corrupted campaign record in %s: %v", s.path, err)
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// PutResult implements Store.
func (s *SQLiteStore) PutResult(id string, res *campaign.Result) error {
	return s.putRecord(recResult, id, res)
}

// Result implements Store.
func (s *SQLiteStore) Result(id string) (*campaign.Result, error) {
	var res campaign.Result
	if err := s.getRecord(func() map[string][]byte { return s.results }, id, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// PutJob implements Store.
func (s *SQLiteStore) PutJob(key string, jr campaign.JobResult) error {
	return s.putRecord(recJob, key, jr)
}

// Job implements Store.
func (s *SQLiteStore) Job(key string) (campaign.JobResult, error) {
	var jr campaign.JobResult
	if err := s.getRecord(func() map[string][]byte { return s.jobs }, key, &jr); err != nil {
		return campaign.JobResult{}, err
	}
	return jr, nil
}

// AcquireJobLease implements Store: the liveness check and the lease append
// run under one exclusive file lock (through the batch overlay, so an
// acquire earlier in the same batch blocks a later one), and stealers
// racing from different processes serialise — exactly one wins. A refused
// acquire stages nothing: it costs no append and no fsync.
func (s *SQLiteStore) AcquireJobLease(key, owner string, ttl time.Duration) error {
	if err := checkLeaseArgs(key, owner, ttl); err != nil {
		return err
	}
	return s.writeTxn(func(v *txnView) error {
		now := time.Now()
		if cur, ok := v.lease(key); ok && cur.live(now) && cur.Owner != owner {
			return fmt.Errorf("%w: job %.12s leased by %s", ErrLeaseHeld, key, cur.Owner)
		}
		return v.stageLease(key, lease{Owner: owner, Expires: now.Add(ttl).UnixNano()})
	})
}

// ReleaseJobLease implements Store: a lease record with an empty owner is
// the release tombstone.
func (s *SQLiteStore) ReleaseJobLease(key, owner string) error {
	if !validRecordName(key) {
		return fmt.Errorf("engine: invalid lease key %q", key)
	}
	return s.writeTxn(func(v *txnView) error {
		cur, ok := v.lease(key)
		if !ok || cur.Owner != owner {
			return nil
		}
		return v.stageLease(key, lease{})
	})
}

// PeekJobLease implements LeasePeeker: a read-only view of key's lease. A
// blocked waiter polls this instead of AcquireJobLease, so waiting costs a
// table read (usually one fstat — see readView) rather than an exclusive
// lock per poll.
func (s *SQLiteStore) PeekJobLease(key string) (string, bool, error) {
	if !validRecordName(key) {
		return "", false, fmt.Errorf("engine: invalid lease key %q", key)
	}
	var owner string
	var held bool
	err := s.readView(func() error {
		if l, ok := s.leases[key]; ok && l.live(time.Now()) {
			owner, held = l.Owner, true
		}
		return nil
	})
	return owner, held, err
}

// LeaseChanged implements LeaseNotifier.
func (s *SQLiteStore) LeaseChanged() <-chan struct{} { return s.signal.wait() }

// PublishJob implements JobPublisher: the job record and the lease release
// fold into one transaction — one append, one fsync (shared with the rest
// of the batch), and no observable state in which the lease is released
// but the result unpublished.
func (s *SQLiteStore) PublishJob(key, owner string, jr campaign.JobResult) error {
	if !validRecordName(key) {
		return fmt.Errorf("engine: invalid record name %q", key)
	}
	if owner == "" {
		return fmt.Errorf("engine: lease owner must be non-empty")
	}
	b, err := json.Marshal(jr)
	if err != nil {
		return err
	}
	return s.writeTxn(func(v *txnView) error {
		if cur, ok := v.job(key); !ok || !bytes.Equal(cur, b) {
			v.stage(recJob, key, b)
		}
		if cur, ok := v.lease(key); ok && cur.Owner == owner {
			return v.stageLease(key, lease{})
		}
		return nil
	})
}

// MaxSeq implements Store. Unreadable record *content* cannot hide a
// sequence here the way it can in a directory store — the key survives even
// when the value doesn't parse — so keys of campaigns and results are the
// whole evidence.
func (s *SQLiteStore) MaxSeq() (int, error) {
	max := 0
	err := s.readView(func() error {
		for id := range s.campaigns {
			if seq, ok := seqFromID(id); ok && seq > max {
				max = seq
			}
		}
		for id := range s.results {
			if seq, ok := seqFromID(id); ok && seq > max {
				max = seq
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return max, nil
}
