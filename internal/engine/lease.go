package engine

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/campaign"
)

// defaultLeaseTTL is the job-lease lifetime when Options.LeaseTTL is zero:
// long enough that a healthy holder's ttl/3 heartbeat never lets it lapse,
// short enough that a crashed holder's jobs are stolen promptly.
const defaultLeaseTTL = 30 * time.Second

// leasePollInterval is how often a runner blocked on a sibling's lease
// re-checks the job store and the lease.
const leasePollInterval = 25 * time.Millisecond

// leaseOwnerID mints a fleet-unique lease owner identity for one engine:
// the PID disambiguates processes on one host, the random suffix
// disambiguates hosts and engine instances within a process.
func leaseOwnerID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion never happens on the platforms we run on;
		// degrade to PID-only rather than fail engine construction.
		return fmt.Sprintf("pid%d", os.Getpid())
	}
	return fmt.Sprintf("pid%d-%s", os.Getpid(), hex.EncodeToString(b[:]))
}

// leaseRunner wraps a Runner with the store's job-lease protocol, making
// execution at-most-once across every engine sharing the store. The
// at-most-once argument:
//
//  1. A job only executes while its executor holds the lease, and the lease
//     admits one live owner at a time.
//  2. The result is stored (PutJob) before the lease is released, so when a
//     waiting sibling finally acquires the lease, its double-check of the
//     job store finds the result and it does not execute.
//  3. A lease is only stolen after its TTL lapses, and a healthy holder
//     renews at ttl/3 — so a steal implies the holder crashed or stalled
//     beyond the TTL, the one case where re-execution is the intended
//     outcome (results are deterministic, so even that race is benign for
//     artifact bytes; it costs duplicate work only).
type leaseRunner struct {
	inner Runner
	store Store
	owner string
	ttl   time.Duration
	m     *engineMetrics
}

// RunJob implements Runner.
func (l *leaseRunner) RunJob(ctx context.Context, key string, spec campaign.Spec, job campaign.Job) (campaign.JobResult, error) {
	// A sibling may have published the result since the pool's cache
	// lookup missed.
	if jr, err := l.store.Job(key); err == nil {
		l.m.leaseServed.Inc()
		return jr, nil
	}

	// Acquire the lease, waiting out a live holder. While waiting, watch
	// the job store: the normal way a wait ends is the holder publishing.
	waited := false
	for {
		err := l.store.AcquireJobLease(key, l.owner, l.ttl)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrLeaseHeld) {
			return campaign.JobResult{}, fmt.Errorf("%w: acquiring job lease: %v", ErrStore, err)
		}
		if !waited {
			waited = true
			l.m.leaseWaits.Inc()
		}
		select {
		case <-ctx.Done():
			return campaign.JobResult{}, ctx.Err()
		case <-time.After(leasePollInterval):
		}
		if jr, err := l.store.Job(key); err == nil {
			l.m.leaseServed.Inc()
			return jr, nil
		}
	}
	l.m.leaseAcquired.Inc()

	// Double-check under the lease: if the previous holder published
	// before releasing (the protocol's write order), serve its result.
	if jr, err := l.store.Job(key); err == nil {
		_ = l.store.ReleaseJobLease(key, l.owner)
		l.m.leaseServed.Inc()
		return jr, nil
	}

	// Heartbeat for the duration of the execution so a long job outlives
	// its TTL.
	hbDone := make(chan struct{})
	hbStopped := make(chan struct{})
	go func() {
		defer close(hbStopped)
		t := time.NewTicker(l.ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-t.C:
				_ = l.store.AcquireJobLease(key, l.owner, l.ttl)
			}
		}
	}()

	jr, err := l.inner.RunJob(ctx, key, spec, job)
	close(hbDone)
	<-hbStopped

	// Publish before releasing — the order the at-most-once argument
	// rests on. A failed put keeps the result (the pool's own cache-store
	// retries it) but still releases, so a sibling is never deadlocked on
	// a dead lease.
	if err == nil {
		_ = l.store.PutJob(key, jr)
	}
	_ = l.store.ReleaseJobLease(key, l.owner)
	return jr, err
}

// countedLocalRunner is LocalRunner plus the pool's executed-jobs counter:
// when the engine wraps local execution in a leaseRunner, the campaign pool
// sees a configured Runner and stops counting executions itself, so the
// runner that actually executes must count.
type countedLocalRunner struct {
	local *LocalRunner
	m     *engineMetrics
}

// RunJob implements Runner.
func (c *countedLocalRunner) RunJob(ctx context.Context, key string, spec campaign.Spec, job campaign.Job) (campaign.JobResult, error) {
	jr, err := c.local.RunJob(ctx, key, spec, job)
	if err == nil {
		c.m.poolExec.Inc()
	}
	return jr, err
}
