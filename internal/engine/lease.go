package engine

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"os"
	"time"

	"repro/internal/campaign"
)

// defaultLeaseTTL is the job-lease lifetime when Options.LeaseTTL is zero:
// long enough that a healthy holder's ttl/3 heartbeat never lets it lapse,
// short enough that a crashed holder's jobs are stolen promptly.
const defaultLeaseTTL = 30 * time.Second

// leaseWaitFloor is the first (pre-jitter) wait of a runner blocked on a
// sibling's lease; successive waits double up to leaseBackoff's cap.
const leaseWaitFloor = 2 * time.Millisecond

// leaseBackoff produces the jittered, exponentially growing waits a runner
// sleeps between lease checks. Doubling bounds the poll rate on long-held
// leases (the cap, TTL/4, still guarantees a crashed holder's lease is
// noticed well within a steal window); the ±50% jitter decorrelates
// waiters that blocked at the same instant, so N siblings waiting on one
// lease do not thunder in lock-step when it changes hands.
type leaseBackoff struct {
	step, max time.Duration
}

// newLeaseBackoff builds the schedule for one wait on a ttl-lived lease.
func newLeaseBackoff(ttl time.Duration) *leaseBackoff {
	max := ttl / 4
	if max < leaseWaitFloor {
		max = leaseWaitFloor
	}
	return &leaseBackoff{step: leaseWaitFloor, max: max}
}

// wait returns the next sleep: the current step jittered to a uniform draw
// from [step/2, 3·step/2), then doubles the step up to the cap.
func (b *leaseBackoff) wait() time.Duration {
	step := b.step
	b.step *= 2
	if b.step > b.max {
		b.step = b.max
	}
	return step/2 + time.Duration(mrand.Int64N(int64(step)))
}

// reset drops the schedule back to the floor — called when a notification
// (not a timeout) ended a sleep, meaning the lease state actually moved
// and the next check is likely to resolve the wait.
func (b *leaseBackoff) reset() { b.step = leaseWaitFloor }

// leaseOwnerID mints a fleet-unique lease owner identity for one engine:
// the PID disambiguates processes on one host, the random suffix
// disambiguates hosts and engine instances within a process.
func leaseOwnerID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion never happens on the platforms we run on;
		// degrade to PID-only rather than fail engine construction.
		return fmt.Sprintf("pid%d", os.Getpid())
	}
	return fmt.Sprintf("pid%d-%s", os.Getpid(), hex.EncodeToString(b[:]))
}

// leaseRunner wraps a Runner with the store's job-lease protocol, making
// execution at-most-once across every engine sharing the store. The
// at-most-once argument:
//
//  1. A job only executes while its executor holds the lease, and the lease
//     admits one live owner at a time.
//  2. The result is stored before the lease is released — in one
//     transaction where the store supports PublishJob — so when a waiting
//     sibling finally acquires the lease, its double-check of the job
//     store finds the result and it does not execute.
//  3. A lease is only stolen after its TTL lapses, and a healthy holder
//     renews at ttl/3 — so a steal implies the holder crashed or stalled
//     beyond the TTL, the one case where re-execution is the intended
//     outcome (results are deterministic, so even that race is benign for
//     artifact bytes; it costs duplicate work only).
//
// Waiting is event-driven where the store allows: a blocked runner arms the
// store's LeaseChanged notifier, polls the lease read-only via
// LeasePeeker (no fsync'd append per poll), and sleeps on a jittered
// exponential backoff between checks — woken early by any in-process
// release or publish.
type leaseRunner struct {
	inner Runner
	store Store
	owner string
	ttl   time.Duration
	m     *engineMetrics
}

// RunJob implements Runner.
func (l *leaseRunner) RunJob(ctx context.Context, key string, spec campaign.Spec, job campaign.Job) (campaign.JobResult, error) {
	// A sibling may have published the result since the pool's cache
	// lookup missed.
	if jr, err := l.store.Job(key); err == nil {
		l.m.leaseServed.Inc()
		return jr, nil
	}

	jr, acquired, err := l.acquire(ctx, key)
	if err != nil {
		return campaign.JobResult{}, err
	}
	if !acquired {
		// The holder published while this runner waited — served, not
		// executed.
		return jr, nil
	}

	// Double-check under the lease: if the previous holder published
	// before releasing (the protocol's write order), serve its result.
	if jr, err := l.store.Job(key); err == nil {
		_ = l.store.ReleaseJobLease(key, l.owner)
		l.m.leaseServed.Inc()
		return jr, nil
	}

	// Heartbeat for the duration of the execution so a long job outlives
	// its TTL. Renewals are writes, but they ride the store's group
	// committer with everything else.
	hbDone := make(chan struct{})
	hbStopped := make(chan struct{})
	go func() {
		defer close(hbStopped)
		t := time.NewTicker(l.ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-t.C:
				_ = l.store.AcquireJobLease(key, l.owner, l.ttl)
			}
		}
	}()

	jr, err = l.inner.RunJob(ctx, key, spec, job)
	close(hbDone)
	<-hbStopped

	// Publish before releasing — the order the at-most-once argument
	// rests on; one transaction where the store folds the two. A failed
	// put keeps the result (the pool's own cache-store retries it) but
	// still releases, so a sibling is never deadlocked on a dead lease.
	if err == nil {
		if l.publish(key, jr) {
			return jr, nil
		}
		_ = l.store.PutJob(key, jr)
	}
	_ = l.store.ReleaseJobLease(key, l.owner)
	return jr, err
}

// publish stores jr and releases the lease in one store transaction when
// the backend offers JobPublisher, reporting whether it did. false — the
// store lacks the op, or it failed — sends the caller down the two-step
// PutJob + ReleaseJobLease path.
func (l *leaseRunner) publish(key string, jr campaign.JobResult) bool {
	p, ok := l.store.(JobPublisher)
	if !ok {
		return false
	}
	return p.PublishJob(key, l.owner, jr) == nil
}

// acquire claims key's lease, waiting out a live holder. acquired is false
// when the wait ended with the holder's published result instead — the
// normal way a wait ends. While blocked, the runner stays read-only
// against the store: it arms the in-process notifier before every check
// (so no release or publish between check and sleep is missed), peeks the
// lease instead of re-attempting the acquire while a live sibling
// demonstrably holds it, and sleeps on jittered exponential backoff capped
// at TTL/4 between checks.
func (l *leaseRunner) acquire(ctx context.Context, key string) (campaign.JobResult, bool, error) {
	err := l.store.AcquireJobLease(key, l.owner, l.ttl)
	if err == nil {
		l.m.leaseAcquired.Inc()
		return campaign.JobResult{}, true, nil
	}
	if !errors.Is(err, ErrLeaseHeld) {
		return campaign.JobResult{}, false, fmt.Errorf("%w: acquiring job lease: %v", ErrStore, err)
	}

	l.m.leaseWaits.Inc()
	start := time.Now()
	defer func() { l.m.leaseWaitSecs.Observe(time.Since(start).Seconds()) }()

	peeker, _ := l.store.(LeasePeeker)
	notifier, _ := l.store.(LeaseNotifier)
	backoff := newLeaseBackoff(l.ttl)
	for {
		// Arm the wakeup before reading any state: a publish or release
		// landing between the checks below and the select still fires the
		// channel. A nil channel (no notifier, or a decorator over a
		// store without one) never fires; the backoff timer carries the
		// wait alone.
		var wake <-chan struct{}
		if notifier != nil {
			wake = notifier.LeaseChanged()
		}
		if jr, jerr := l.store.Job(key); jerr == nil {
			l.m.leaseServed.Inc()
			return jr, false, nil
		}
		// While a live sibling holds the lease, an acquire attempt is a
		// foregone conclusion that costs an exclusive-lock write
		// transaction on the shared backends — peek read-only instead and
		// only attempt the acquire when the lease looks free (or the peek
		// cannot say).
		free := true
		if peeker != nil {
			if owner, held, perr := peeker.PeekJobLease(key); perr == nil && held && owner != l.owner {
				free = false
			}
		}
		if free {
			err := l.store.AcquireJobLease(key, l.owner, l.ttl)
			if err == nil {
				l.m.leaseAcquired.Inc()
				return campaign.JobResult{}, true, nil
			}
			if !errors.Is(err, ErrLeaseHeld) {
				return campaign.JobResult{}, false, fmt.Errorf("%w: acquiring job lease: %v", ErrStore, err)
			}
		}
		select {
		case <-ctx.Done():
			return campaign.JobResult{}, false, ctx.Err()
		case <-wake:
			backoff.reset()
		case <-time.After(backoff.wait()):
		}
	}
}

// countedLocalRunner is LocalRunner plus the pool's executed-jobs counter:
// when the engine wraps local execution in a leaseRunner, the campaign pool
// sees a configured Runner and stops counting executions itself, so the
// runner that actually executes must count.
type countedLocalRunner struct {
	local *LocalRunner
	m     *engineMetrics
}

// RunJob implements Runner.
func (c *countedLocalRunner) RunJob(ctx context.Context, key string, spec campaign.Spec, job campaign.Job) (campaign.JobResult, error) {
	jr, err := c.local.RunJob(ctx, key, spec, job)
	if err == nil {
		c.m.poolExec.Inc()
	}
	return jr, err
}
