package engine

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/campaign"
)

// fakeWorker is a minimal worker process for dispatcher tests: it speaks
// the internal job protocol (decode JobRequest, execute, respond) and can
// be switched into a failing mode — the dispatcher cannot tell a crashed
// worker from one answering 500s, so flipping the switch is "killing" it.
type fakeWorker struct {
	ts       *httptest.Server
	jobs     atomic.Int64
	failing  atomic.Bool
	rejected atomic.Int64 // when >0 via rejecting, count of 404s served
	// rejecting makes the worker answer 404 for jobs while staying
	// healthy — the missing-trace shape of refusal.
	rejecting atomic.Bool
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	w := &fakeWorker{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		if w.failing.Load() {
			rw.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		rw.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST /internal/jobs", func(rw http.ResponseWriter, r *http.Request) {
		if w.failing.Load() {
			http.Error(rw, "worker down", http.StatusInternalServerError)
			return
		}
		if w.rejecting.Load() {
			w.rejected.Add(1)
			http.Error(rw, "trace not available on this worker", http.StatusNotFound)
			return
		}
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		w.jobs.Add(1)
		jr := campaign.ExecuteJob(req.Spec, req.Job, nil)
		json.NewEncoder(rw).Encode(JobResponse{Key: req.Key, Result: jr})
	})
	w.ts = httptest.NewServer(mux)
	t.Cleanup(w.ts.Close)
	return w
}

// newTestDispatcher builds a dispatcher over the given fake workers with a
// quiet logger and cleans it up with the test.
func newTestDispatcher(t *testing.T, opts DispatcherOptions, workers ...*fakeWorker) *Dispatcher {
	t.Helper()
	remotes := make([]*RemoteRunner, len(workers))
	for i, w := range workers {
		remotes[i] = NewRemoteRunner(w.ts.URL, "")
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	d := NewDispatcher(remotes, opts)
	t.Cleanup(d.Close)
	return d
}

// runLocal is the reference output every dispatch path must reproduce.
func runLocal(t *testing.T, spec campaign.Spec) (*campaign.Result, []byte, []byte) {
	t.Helper()
	res, err := campaign.Run(context.Background(), spec, campaign.RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	j, c := artifacts(t, res)
	return res, j, c
}

// resolveWith runs spec through a fresh engine wired to the given runner
// and returns its artifacts.
func resolveWith(t *testing.T, runner Runner, spec campaign.Spec) (*campaign.Result, []byte, []byte) {
	t.Helper()
	e, err := New(NewMemStore(), Options{Workers: 2, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := e.Resolve(context.Background(), spec, ResolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j, c := artifacts(t, res)
	return res, j, c
}

func TestShardIndexStableAndInRange(t *testing.T) {
	spec := testSpec("povray", "hmmer", "omnetpp", "xalancbmk")
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 7} {
		seen := map[int]bool{}
		for _, job := range jobs {
			key := JobKey(spec, job, "")
			idx := shardIndex(key, n)
			if idx < 0 || idx >= n {
				t.Fatalf("shardIndex(%q, %d) = %d out of range", key, n, idx)
			}
			if idx != shardIndex(key, n) {
				t.Fatalf("shardIndex not deterministic for %q", key)
			}
			seen[idx] = true
		}
		t.Logf("n=%d: %d jobs spread over %d shards", n, len(jobs), len(seen))
	}
	// Non-hex keys must still land in range via the FNV fallback.
	if idx := shardIndex("not-a-hex-key", 3); idx < 0 || idx >= 3 {
		t.Fatalf("fallback shardIndex out of range: %d", idx)
	}
}

// TestDispatcherByteIdentity is the distribution determinism contract at
// the engine layer: a two-worker fleet produces artifacts byte-identical
// to a single-process run of the same spec, and every job ran remotely.
func TestDispatcherByteIdentity(t *testing.T) {
	spec := testSpec("povray", "hmmer")
	_, wantJSON, wantCSV := runLocal(t, spec)

	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	d := newTestDispatcher(t, DispatcherOptions{}, w1, w2)
	_, gotJSON, gotCSV := resolveWith(t, d, spec)

	if string(gotJSON) != string(wantJSON) {
		t.Error("distributed JSON artifact differs from single-process run")
	}
	if string(gotCSV) != string(wantCSV) {
		t.Error("distributed CSV artifact differs from single-process run")
	}
	st := d.Stats()
	if got := w1.jobs.Load() + w2.jobs.Load(); got != 2 || st.Remote != 2 {
		t.Errorf("want 2 remote executions, workers saw %d, stats %+v", got, st)
	}
	if st.LocalFallback != 0 {
		t.Errorf("unexpected local fallbacks: %+v", st)
	}
}

// TestDispatcherReassignsFromDeadWorker kills one worker's half of the
// fleet before dispatch: its jobs must be reassigned to the survivor and
// the artifacts must not change.
func TestDispatcherReassignsFromDeadWorker(t *testing.T) {
	spec := testSpec("povray", "hmmer", "omnetpp", "xalancbmk")
	_, wantJSON, _ := runLocal(t, spec)

	dead, alive := newFakeWorker(t), newFakeWorker(t)
	dead.failing.Store(true)
	d := newTestDispatcher(t, DispatcherOptions{}, dead, alive)
	_, gotJSON, _ := resolveWith(t, d, spec)

	if string(gotJSON) != string(wantJSON) {
		t.Error("artifact differs after worker failure")
	}
	jobs, _ := spec.Jobs()
	preferDead := 0
	for _, job := range jobs {
		if shardIndex(JobKey(spec, job, ""), 2) == 0 {
			preferDead++
		}
	}
	st := d.Stats()
	if st.Remote != len(jobs) || st.Reassigned != preferDead {
		t.Errorf("want %d remote with %d reassigned, got %+v (dead executed %d)",
			len(jobs), preferDead, st, dead.jobs.Load())
	}
	if dead.jobs.Load() != 0 {
		t.Errorf("dead worker executed %d jobs", dead.jobs.Load())
	}
	if states := d.WorkerStates(); !states[0].Down || states[1].Down {
		t.Errorf("worker states after failure: %+v", states)
	}
}

// TestDispatcherLocalFallback: with the whole fleet dead, every job runs
// locally and the campaign still completes with identical artifacts.
func TestDispatcherLocalFallback(t *testing.T) {
	spec := testSpec("povray", "hmmer")
	_, wantJSON, _ := runLocal(t, spec)

	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	w1.failing.Store(true)
	w2.failing.Store(true)
	d := newTestDispatcher(t, DispatcherOptions{}, w1, w2)
	_, gotJSON, _ := resolveWith(t, d, spec)

	if string(gotJSON) != string(wantJSON) {
		t.Error("artifact differs under total fleet failure")
	}
	if st := d.Stats(); st.LocalFallback != 2 || st.Remote != 0 {
		t.Errorf("want 2 local fallbacks, got %+v", st)
	}
}

// TestDispatcherNoWorkersRunsLocally covers the degenerate configuration:
// an empty fleet is plain local execution, no fallback accounting.
func TestDispatcherNoWorkersRunsLocally(t *testing.T) {
	spec := testSpec()
	_, wantJSON, _ := runLocal(t, spec)
	d := newTestDispatcher(t, DispatcherOptions{})
	_, gotJSON, _ := resolveWith(t, d, spec)
	if string(gotJSON) != string(wantJSON) {
		t.Error("artifact differs with empty fleet")
	}
	if d.Capacity() != 0 {
		t.Errorf("empty fleet capacity = %d", d.Capacity())
	}
}

// TestDispatcherRejectionKeepsWorkerUp: a worker that refuses jobs with a
// 4xx (a trace it does not hold) must stay in the rotation — the jobs
// reroute, the artifacts do not change, and one unroutable campaign cannot
// collapse a healthy fleet.
func TestDispatcherRejectionKeepsWorkerUp(t *testing.T) {
	spec := testSpec("povray", "hmmer", "omnetpp", "xalancbmk")
	_, wantJSON, _ := runLocal(t, spec)

	rejector, alive := newFakeWorker(t), newFakeWorker(t)
	rejector.rejecting.Store(true)
	d := newTestDispatcher(t, DispatcherOptions{}, rejector, alive)
	_, gotJSON, _ := resolveWith(t, d, spec)

	if string(gotJSON) != string(wantJSON) {
		t.Error("artifact differs when a worker rejects jobs")
	}
	if states := d.WorkerStates(); states[0].Down || states[1].Down {
		t.Errorf("a rejecting worker must stay in the rotation: %+v", states)
	}
	if rejector.jobs.Load() != 0 {
		t.Errorf("rejecting worker executed %d jobs", rejector.jobs.Load())
	}
	if rejector.rejected.Load() == 0 {
		t.Skip("no job preferred the rejecting worker for this key layout")
	}
	if st := d.Stats(); st.Remote+st.LocalFallback != 4 {
		t.Errorf("jobs unaccounted for: %+v", st)
	}
}

// TestDispatcherHealthRevival: a worker marked down rejoins the rotation
// once a probe finds it healthy again.
func TestDispatcherHealthRevival(t *testing.T) {
	w := newFakeWorker(t)
	w.failing.Store(true)
	d := newTestDispatcher(t, DispatcherOptions{}, w)

	spec := testSpec()
	jobs, _ := spec.Jobs()
	key := JobKey(spec, jobs[0], "")
	if _, err := d.RunJob(context.Background(), key, spec, jobs[0]); err != nil {
		t.Fatalf("local fallback should have absorbed the failure: %v", err)
	}
	if states := d.WorkerStates(); !states[0].Down {
		t.Fatal("worker not marked down after failure")
	}

	w.failing.Store(false)
	d.probeDown(context.Background())
	if states := d.WorkerStates(); states[0].Down {
		t.Fatal("worker not revived by health probe")
	}
	if _, err := d.RunJob(context.Background(), key, spec, jobs[0]); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Remote != 1 || w.jobs.Load() != 1 {
		t.Errorf("revived worker did not execute: %+v (worker saw %d)", st, w.jobs.Load())
	}
}
