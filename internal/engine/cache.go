package engine

import (
	"bytes"
	"container/list"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// defaultReadCacheBytes is the read-cache budget an engine gets when
// Options.ReadCacheBytes is zero and the store is Shared: shared backends
// pay a syscall round-trip (or worse) per read, so the engine, the figures
// assembly, and the worker read-through all sit behind one bounded cache.
const defaultReadCacheBytes = 64 << 20

// CachedStore is a bounded, singleflight-guarded read cache in front of any
// Store. It exploits the records' own contracts: job results and finished
// campaign Result artifacts are content-addressed or written-once, so a
// value read once never changes and may be served from memory forever
// (within the byte budget, LRU-evicted). Campaign records are mutable and
// shared across processes, so they are never cached, and neither are
// misses — a sibling may publish a key at any moment. Entries are kept as
// canonical JSON bytes and unmarshalled per hit, so a cached record
// round-trips through exactly the serialisation a store read would —
// byte-identity is preserved.
//
// Writes pass through with one exception: PutJob of bytes identical to the
// cached entry is dropped before it reaches the store — job records are
// content-addressed, so the store provably holds the same bytes and the
// duplicate write (on shared backends, an fsync) is pure waste.
type CachedStore struct {
	inner Store

	mu       sync.Mutex
	lru      *list.List // of *cacheEntry, front = most recently used
	byKey    map[string]*list.Element
	bytes    int64
	maxBytes int64
	flight   map[string]*cacheFetch

	hits   *obs.Counter
	misses *obs.Counter
}

// cacheEntry is one cached record: its namespaced key and canonical bytes.
type cacheEntry struct {
	key string
	val []byte
}

// cacheFetch is one in-flight singleflight load; followers block on done
// and share val/err.
type cacheFetch struct {
	done chan struct{}
	val  []byte
	err  error
}

// NewCachedStore wraps inner with a read cache bounded to maxBytes of
// cached record bytes.
func NewCachedStore(inner Store, maxBytes int64) *CachedStore {
	return &CachedStore{
		inner:    inner,
		lru:      list.New(),
		byKey:    map[string]*list.Element{},
		maxBytes: maxBytes,
		flight:   map[string]*cacheFetch{},
	}
}

// instrument implements storeInstrumenter: hit/miss counters for the read
// cache.
func (c *CachedStore) instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits = r.Counter("cherivoke_store_readcache_hits_total",
		"Store reads served from the engine's in-memory read cache.")
	c.misses = r.Counter("cherivoke_store_readcache_misses_total",
		"Store reads the read cache had to forward to the backing store.")
}

// entryOverhead approximates the bookkeeping cost of one entry beyond its
// key and value bytes, so a flood of tiny records cannot blow the budget.
const entryOverhead = 64

// lookup returns the cached bytes for key, refreshing its LRU position.
func (c *CachedStore) lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// storeLocked inserts (or refreshes) key's bytes and evicts from the LRU
// tail until the budget holds. Callers hold c.mu.
func (c *CachedStore) storeLocked(key string, val []byte) {
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(val)) - int64(len(ent.val))
		ent.val = val
		c.lru.MoveToFront(el)
	} else {
		c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
		c.bytes += int64(len(key)+len(val)) + entryOverhead
	}
	for c.bytes > c.maxBytes {
		el := c.lru.Back()
		if el == nil {
			break
		}
		ent := c.lru.Remove(el).(*cacheEntry)
		delete(c.byKey, ent.key)
		c.bytes -= int64(len(ent.key)+len(ent.val)) + entryOverhead
	}
}

// fetch serves key from the cache or loads it from the store exactly once
// per concurrent burst: followers of an in-flight load block on it and
// share its outcome instead of stampeding the backing store.
func (c *CachedStore) fetch(key string, load func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		c.hits.Inc()
		return val, nil
	}
	if f, ok := c.flight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err == nil {
			c.hits.Inc()
		}
		return f.val, f.err
	}
	f := &cacheFetch{done: make(chan struct{})}
	c.flight[key] = f
	c.mu.Unlock()

	c.misses.Inc()
	f.val, f.err = load()
	c.mu.Lock()
	delete(c.flight, key)
	if f.err == nil {
		// Only positive results are cached: a miss may be a sibling's
		// publish away from becoming a hit, and an error says nothing
		// about the record.
		c.storeLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, f.err
}

// Cache key namespaces: jobs and results share one LRU.
const (
	cacheJobPrefix    = "job:"
	cacheResultPrefix = "res:"
)

// Job implements Store, serving cached job bytes when present.
func (c *CachedStore) Job(key string) (campaign.JobResult, error) {
	b, err := c.fetch(cacheJobPrefix+key, func() ([]byte, error) {
		jr, err := c.inner.Job(key)
		if err != nil {
			return nil, err
		}
		return json.Marshal(jr)
	})
	if err != nil {
		return campaign.JobResult{}, err
	}
	var jr campaign.JobResult
	if err := json.Unmarshal(b, &jr); err != nil {
		return campaign.JobResult{}, err
	}
	return jr, nil
}

// PutJob implements Store, dropping writes whose bytes the cache proves
// the store already holds (job records are content-addressed — identical
// key means identical bytes).
func (c *CachedStore) PutJob(key string, jr campaign.JobResult) error {
	b, err := json.Marshal(jr)
	if err != nil {
		return err
	}
	if cur, ok := c.lookup(cacheJobPrefix + key); ok && bytes.Equal(cur, b) {
		return nil
	}
	if err := c.inner.PutJob(key, jr); err != nil {
		return err
	}
	c.mu.Lock()
	c.storeLocked(cacheJobPrefix+key, b)
	c.mu.Unlock()
	return nil
}

// Result implements Store, serving cached artifact bytes when present.
func (c *CachedStore) Result(id string) (*campaign.Result, error) {
	b, err := c.fetch(cacheResultPrefix+id, func() ([]byte, error) {
		res, err := c.inner.Result(id)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	})
	if err != nil {
		return nil, err
	}
	var res campaign.Result
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// PutResult implements Store, caching the just-written artifact (a Result
// is written once per campaign, so the write is the authoritative bytes).
func (c *CachedStore) PutResult(id string, res *campaign.Result) error {
	if err := c.inner.PutResult(id, res); err != nil {
		return err
	}
	if b, err := json.Marshal(res); err == nil {
		c.mu.Lock()
		c.storeLocked(cacheResultPrefix+id, b)
		c.mu.Unlock()
	}
	return nil
}

// PutCampaign implements Store. Campaign records are mutable and shared,
// so they bypass the cache entirely.
func (c *CachedStore) PutCampaign(rec Campaign) error { return c.inner.PutCampaign(rec) }

// CreateCampaign implements Store (uncached — see PutCampaign).
func (c *CachedStore) CreateCampaign(rec Campaign) error { return c.inner.CreateCampaign(rec) }

// Campaign implements Store (uncached — see PutCampaign).
func (c *CachedStore) Campaign(id string) (Campaign, error) { return c.inner.Campaign(id) }

// Campaigns implements Store (uncached — see PutCampaign).
func (c *CachedStore) Campaigns() ([]Campaign, error) { return c.inner.Campaigns() }

// AcquireJobLease implements Store, forwarding: leases are live mutable
// coordination state, never cached.
func (c *CachedStore) AcquireJobLease(key, owner string, ttl time.Duration) error {
	return c.inner.AcquireJobLease(key, owner, ttl)
}

// ReleaseJobLease implements Store, forwarding.
func (c *CachedStore) ReleaseJobLease(key, owner string) error {
	return c.inner.ReleaseJobLease(key, owner)
}

// PeekJobLease implements LeasePeeker, forwarding when the inner store
// offers it.
func (c *CachedStore) PeekJobLease(key string) (string, bool, error) {
	if p, ok := c.inner.(LeasePeeker); ok {
		return p.PeekJobLease(key)
	}
	return "", false, errors.ErrUnsupported
}

// LeaseChanged implements LeaseNotifier, forwarding; a nil channel (never
// ready) when the inner store has no notifier.
func (c *CachedStore) LeaseChanged() <-chan struct{} {
	if n, ok := c.inner.(LeaseNotifier); ok {
		return n.LeaseChanged()
	}
	return nil
}

// PublishJob implements JobPublisher, forwarding and caching the published
// bytes on success so the campaign pool's follow-up put of the same record
// is dropped.
func (c *CachedStore) PublishJob(key, owner string, jr campaign.JobResult) error {
	p, ok := c.inner.(JobPublisher)
	if !ok {
		return errors.ErrUnsupported
	}
	if err := p.PublishJob(key, owner, jr); err != nil {
		return err
	}
	if b, err := json.Marshal(jr); err == nil {
		c.mu.Lock()
		c.storeLocked(cacheJobPrefix+key, b)
		c.mu.Unlock()
	}
	return nil
}

// MaxSeq implements Store, forwarding: sequence evidence must be live.
func (c *CachedStore) MaxSeq() (int, error) { return c.inner.MaxSeq() }
