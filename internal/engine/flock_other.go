//go:build !unix

package engine

import "os"

// flockSupported reports whether advisory file locks actually exclude other
// processes on this platform; see flock_unix.go. On platforms without
// flock(2) the helpers degrade to no-ops: a single process stays correct
// (the stores' own mutexes serialise it), but cross-process exclusion is
// not enforced.
const flockSupported = false

// flockExclusive is a no-op on platforms without flock(2).
func flockExclusive(*os.File) error { return nil }

// flockShared is a no-op on platforms without flock(2).
func flockShared(*os.File) error { return nil }

// flockTryExclusive always reports success on platforms without flock(2).
func flockTryExclusive(*os.File) (bool, error) { return true, nil }

// funlock is a no-op on platforms without flock(2).
func funlock(*os.File) error { return nil }
