// Package engine is the store-backed campaign execution layer between
// internal/campaign (the deterministic job runner) and internal/server (the
// HTTP adapter). It owns two seams:
//
//   - Store: persistence for submitted campaigns, their finished Result
//     artifacts, and individual JobResults keyed by content hash. MemStore
//     keeps everything in process memory; DirStore files every record
//     atomically under a state directory and recovers crash-safely on open
//     (corrupted entries are skipped with a logged warning, and campaigns
//     that were running when the process died are finalised from their
//     stored result or marked failed).
//
//   - Engine: the execution front. Every job is keyed by JobKey — a SHA-256
//     over the canonical serialisation of everything that determines its
//     result (profile, variant, fraction, seed, heap scale, workload
//     bounds, traffic model, image-sweep plan, and the full content hash of
//     any replayed trace) — so resubmitted or overlapping campaigns reuse
//     stored JobResults instead of re-running them. Because campaign
//     artifacts are deterministic, a warm-cache rerun yields byte-identical
//     JSON and CSV artifacts to a cold run; the cache changes cost, never
//     results.
//
// The engine deliberately excludes from the key everything that only
// schedules work: worker counts, sweep-shard membership of the pool,
// Spec.TraceWindow, and the spelling of a trace ref (a prefix and the full
// hash of the same trace share a key).
package engine
