// Package engine is the store-backed campaign execution layer between
// internal/campaign (the deterministic job runner) and internal/server (the
// HTTP adapter). It owns two seams:
//
//   - Store: persistence for submitted campaigns, their finished Result
//     artifacts, and individual JobResults keyed by content hash. MemStore
//     keeps everything in process memory; DirStore files every record
//     atomically under a state directory and recovers crash-safely on open
//     (corrupted entries are skipped with a logged warning, and campaigns
//     that were running when the process died are finalised from their
//     stored result or marked failed).
//
//   - Engine: the execution front. Every job is keyed by JobKey — a SHA-256
//     over the canonical serialisation of everything that determines its
//     result (profile, variant, fraction, seed, heap scale, workload
//     bounds, traffic model, image-sweep plan, and the full content hash of
//     any replayed trace) — so resubmitted or overlapping campaigns reuse
//     stored JobResults instead of re-running them. Because campaign
//     artifacts are deterministic, a warm-cache rerun yields byte-identical
//     JSON and CSV artifacts to a cold run; the cache changes cost, never
//     results.
//
//   - Runner: the distribution seam. The engine hands every cache-miss job
//     to its configured Runner along with the job's key. LocalRunner
//     executes in-process (the default); RemoteRunner forwards one job to a
//     worker process's internal HTTP API; Dispatcher implements Runner over
//     a whole fleet — jobs shard across workers by JobKey hash with bounded
//     per-worker dispatch, failed workers are marked down and their jobs
//     reassigned, and local execution is the last resort, so campaigns
//     always complete. Because the routing key is the dedup key and workers
//     execute the same campaign.ExecuteJob a local pool would, artifacts
//     are byte-identical at any worker count and the fleet shares one
//     deduplicated job store.
//
// The engine deliberately excludes from the key everything that only
// schedules work: worker counts, sweep-shard membership of the pool,
// Spec.TraceWindow, and the spelling of a trace ref (a prefix and the full
// hash of the same trace share a key).
package engine
