package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// States of a campaign's lifecycle, shared with the HTTP layer.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Campaign is one submitted campaign's persistent record: everything the
// status surface reports, minus the Result artifact itself (stored
// separately — it can be large). CacheHits counts jobs served from the
// job-result store instead of being executed; for a fully deduplicated
// resubmission it equals JobsTotal.
type Campaign struct {
	ID      string        `json:"id"`
	Seq     int           `json:"seq"`
	Name    string        `json:"name,omitempty"`
	Spec    campaign.Spec `json:"spec"`
	Workers int           `json:"workers"`

	// TraceHash is the full content hash Spec.TraceRef resolved to at
	// submission ("" for generated workloads).
	TraceHash string `json:"trace_hash,omitempty"`

	State      string            `json:"state"`
	JobsTotal  int               `json:"jobs_total"`
	JobsDone   int               `json:"jobs_done"`
	JobsFailed int               `json:"jobs_failed"`
	CacheHits  int               `json:"cache_hits"`
	Error      string            `json:"error,omitempty"`
	Created    time.Time         `json:"created"`
	Finished   time.Time         `json:"finished,omitzero"`
	Summary    *campaign.Summary `json:"summary,omitempty"`
}

// finishFrom finalises the record from a completed Result.
func (c *Campaign) finishFrom(res *campaign.Result) {
	c.JobsDone = len(res.Jobs)
	c.JobsFailed = res.Summary.Failed
	sum := res.Summary
	c.Summary = &sum
	if res.Summary.Failed > 0 {
		c.State = StateFailed
		c.Error = res.FirstError().Error()
	} else {
		c.State = StateDone
	}
}

// Options configures an Engine.
type Options struct {
	// Workers is the default per-campaign pool width for submissions
	// that do not specify one (0 = GOMAXPROCS).
	Workers int

	// Traces resolves Spec.TraceRef for submitted campaigns (nil when
	// the deployment has no trace store).
	Traces campaign.TraceOpener

	// Runner, when set, executes the jobs the job-result store cannot
	// serve — the distribution seam. A coordinator passes a Dispatcher
	// here to fan jobs out across worker processes; nil executes
	// in-process via campaign's own pool. Either way results flow back
	// through the Store, so the fleet shares one deduplicated job
	// cache.
	Runner Runner

	// SkipRecovery leaves records that are marked running untouched on
	// open instead of finalising them. Recovery belongs to the store's
	// owner — the serving process; a secondary consumer of a shared
	// state directory (the CLI resolving against a server's job store)
	// must not declare a live campaign interrupted.
	SkipRecovery bool

	// Shared declares that other engines — in this process or others —
	// write the same Store concurrently. It turns on the job-lease
	// protocol (every execution runs under a store lease, so a job is
	// computed at most once fleet-wide) and makes Get/List/Result consult
	// the store for campaigns other engines submitted. Shared stores are
	// normally opened with SkipRecovery: a peer's running campaign is
	// live, not interrupted.
	Shared bool

	// LeaseTTL is the job-lease lifetime under Shared (0 = a 30s
	// default). A holder heartbeats at a third of this; a lease idle past
	// it is stolen, so it bounds how long a crashed engine's jobs stay
	// blocked.
	LeaseTTL time.Duration

	// ReadCacheBytes bounds the engine's in-memory read cache over the
	// store's immutable records — job results and finished campaign
	// Result artifacts — in bytes (see CachedStore). 0 selects a 64 MiB
	// default when Shared is set (shared backends pay at least a syscall
	// round-trip per read; local stores are already memory-speed) and no
	// cache otherwise; negative disables caching explicitly. Campaign
	// records are never cached — sibling engines mutate them.
	ReadCacheBytes int64

	// Metrics, when set, instruments the engine and everything it runs:
	// submission/cache counters, store-operation latencies, and the
	// campaign pool's own telemetry (the registry is threaded into every
	// Run). Observation-only: a nil registry costs nothing and results
	// never depend on it.
	Metrics *obs.Registry
}

// Engine executes campaigns against a Store: submissions are persisted,
// jobs are deduplicated by JobKey against the job-result store, finished
// artifacts are persisted, and the whole registry is rebuilt from the store
// on construction — state survives a restart.
type Engine struct {
	store   Store
	opts    Options
	metrics engineMetrics
	owner   string // fleet-unique lease owner identity

	mu   sync.Mutex
	seq  int
	runs map[string]*run
}

// run is one campaign's live state: the mutating record plus progress
// subscribers. Recovered and finished campaigns keep a run with closed set.
type run struct {
	mu     sync.Mutex
	rec    Campaign
	cancel context.CancelFunc
	subs   map[chan Event]struct{}
	closed bool
}

// Event is one progress notification: a per-job "progress" event or a
// terminal "status" snapshot.
type Event struct {
	Type     string // "progress" or "status"
	Status   *Campaign
	Progress *campaign.Progress
}

// New builds an Engine over store, recovering persisted state: records are
// loaded, the ID sequence resumes past the highest stored record, and any
// campaign still marked running (the process died mid-run) is finalised
// from its stored Result when the final write made it to disk, or marked
// failed when it did not. Its cache-hit count is lost either way; its
// jobs' results are not — they were stored as each job finished and will
// serve a resubmission without a single re-execution.
func New(store Store, opts Options) (*Engine, error) {
	if si, ok := store.(storeInstrumenter); ok && opts.Metrics != nil {
		si.instrument(opts.Metrics)
	}
	store = instrumentStore(store, opts.Metrics)
	// The read cache sits outermost — above the latency instruments — so
	// a cache hit is a cache hit, not a suspiciously fast store op.
	if n := opts.ReadCacheBytes; n > 0 || (n == 0 && opts.Shared) {
		if n <= 0 {
			n = defaultReadCacheBytes
		}
		cached := NewCachedStore(store, n)
		cached.instrument(opts.Metrics)
		store = cached
	}
	recs, err := store.Campaigns()
	if err != nil {
		return nil, err
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = defaultLeaseTTL
	}
	e := &Engine{store: store, opts: opts, metrics: newEngineMetrics(opts.Metrics), owner: leaseOwnerID(), runs: make(map[string]*run, len(recs))}
	// Resume the ID sequence past every record the store has evidence of
	// — a corrupted (hence unlisted) record still fences off its ID, so
	// its orphaned result artifact can never be served for a new
	// campaign.
	if e.seq, err = store.MaxSeq(); err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if rec.Seq > e.seq {
			e.seq = rec.Seq
		}
		if rec.State == StateRunning && !opts.SkipRecovery {
			if res, err := store.Result(rec.ID); err == nil {
				rec.finishFrom(res)
			} else {
				rec.State = StateFailed
				rec.Error = "interrupted by restart before completion"
			}
			// The true finish time died with the process; recovery
			// time keeps the "finished is set once terminal"
			// contract.
			rec.Finished = time.Now().UTC()
			if err := store.PutCampaign(rec); err != nil {
				return nil, fmt.Errorf("engine: recovering campaign %s: %w", rec.ID, err)
			}
		}
		e.runs[rec.ID] = &run{rec: rec, closed: true}
	}
	return e, nil
}

// resolveTraceHash maps a spec's trace ref to the full content hash of the
// trace bytes, validating the ref in the process.
func resolveTraceHash(traces campaign.TraceOpener, ref string) (string, error) {
	if traces == nil {
		return "", fmt.Errorf("engine: spec references trace %q but no trace opener is configured", ref)
	}
	tr, hash, err := traces.OpenTrace(ref)
	if err != nil {
		return "", err
	}
	tr.Close()
	return hash, nil
}

// Submit validates spec, persists a new campaign record, and starts its run
// on a background goroutine. The returned record is the initial (running)
// snapshot. Validation failures — a bad spec, an unresolvable trace ref —
// are the caller's to report; nothing is persisted for them.
func (e *Engine) Submit(spec campaign.Spec, workers int) (Campaign, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return Campaign{}, err
	}
	var traceHash string
	if spec.TraceRef != "" {
		if traceHash, err = resolveTraceHash(e.opts.Traces, spec.TraceRef); err != nil {
			return Campaign{}, err
		}
	}
	if workers <= 0 {
		workers = e.opts.Workers
	}

	// Mint the ID by compare-and-swap: CreateCampaign refuses an ID that
	// exists, so when another engine sharing the store minted the same
	// sequence first, this engine observes the conflict, resynchronises
	// its sequence from the store, and retries with the next one — two
	// coordinators can never clobber each other's records. Persisting
	// before publishing also means a campaign that cannot be recorded is
	// never listed, so no client can observe an ID that then vanishes;
	// a consumed sequence number just becomes a gap.
	var rec Campaign
	for attempt := 0; ; attempt++ {
		e.mu.Lock()
		e.seq++
		rec = Campaign{
			ID:        fmt.Sprintf("c%06d", e.seq),
			Seq:       e.seq,
			Name:      spec.Name,
			Spec:      spec,
			Workers:   workers,
			TraceHash: traceHash,
			State:     StateRunning,
			JobsTotal: len(jobs),
			Created:   time.Now().UTC(),
		}
		e.mu.Unlock()
		err := e.store.CreateCampaign(rec)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrConflict) || attempt >= 100 {
			return Campaign{}, fmt.Errorf("%w: %v", ErrStore, err)
		}
		max, merr := e.store.MaxSeq()
		if merr != nil {
			return Campaign{}, fmt.Errorf("%w: %v", ErrStore, merr)
		}
		e.mu.Lock()
		if max > e.seq {
			e.seq = max
		}
		e.mu.Unlock()
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &run{rec: rec, cancel: cancel, subs: map[chan Event]struct{}{}}
	e.mu.Lock()
	e.runs[rec.ID] = r
	e.mu.Unlock()
	e.metrics.submits.Inc()
	e.metrics.active.Inc()
	go e.execute(ctx, r)
	return rec, nil
}

// execute runs one submitted campaign to completion, persisting the Result
// before the terminal record write: a crash between the two leaves a
// running record that New completes from the stored Result, whereas the
// reverse order could mark done a campaign whose artifact never reached
// the disk.
func (e *Engine) execute(ctx context.Context, r *run) {
	r.mu.Lock()
	id, spec, workers, traceHash := r.rec.ID, r.rec.Spec, r.rec.Workers, r.rec.TraceHash
	jobs := r.rec.JobsTotal
	r.mu.Unlock()

	// The campaign ID rides the context so every log record below the
	// engine — pool, dispatcher, store — can be correlated to it.
	ctx = obs.WithCampaignID(ctx, id)
	lg := obs.ContextLogger(ctx, obs.Logger("engine"))
	start := time.Now()
	lg.Info("campaign started", "name", spec.Name, "jobs", jobs, "workers", workers)

	res, err := campaign.Run(ctx, spec, campaign.RunOptions{
		Workers:    workers,
		Traces:     e.opts.Traces,
		Cache:      e.cache(traceHash),
		Runner:     e.jobRunner(traceHash),
		OnProgress: r.onProgress,
		Metrics:    e.opts.Metrics,
	})
	e.metrics.active.Dec()
	if err == nil && res != nil {
		if perr := e.store.PutResult(id, res); perr != nil {
			res, err = nil, perr
		}
	}

	r.mu.Lock()
	r.rec.Finished = time.Now().UTC()
	switch {
	case err == nil && res != nil:
		// A completed campaign keeps its result even if a cancel raced
		// in after the last job finished.
		r.rec.finishFrom(res)
	case ctx.Err() != nil:
		r.rec.State = StateCancelled
		r.rec.Error = ctx.Err().Error()
	default:
		r.rec.State = StateFailed
		r.rec.Error = err.Error()
	}
	rec := r.rec
	r.broadcastLocked(Event{Type: "status", Status: &rec})
	for ch := range r.subs {
		close(ch)
	}
	r.subs = nil
	r.closed = true
	r.mu.Unlock()
	lg.Info("campaign finished",
		"state", rec.State,
		"jobs_done", rec.JobsDone,
		"jobs_failed", rec.JobsFailed,
		"cache_hits", rec.CacheHits,
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
	)
	// Best effort: if the terminal write fails, New re-finalises the
	// still-running record from the stored Result on next open.
	_ = e.store.PutCampaign(rec)
}

func (r *run) onProgress(p campaign.Progress) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rec.JobsDone = p.Done
	if p.Error != "" {
		r.rec.JobsFailed++
	}
	if p.Cached {
		r.rec.CacheHits++
	}
	pp := p
	r.broadcastLocked(Event{Type: "progress", Progress: &pp})
}

// broadcastLocked delivers ev to every subscriber, dropping it for
// subscribers whose buffers are full (the terminal status is re-read from
// the record, so nothing essential is lost).
func (r *run) broadcastLocked(ev Event) {
	for ch := range r.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (e *Engine) run(id string) *run {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runs[id]
}

// Get returns a campaign's current record snapshot. Under Shared, an ID
// this engine does not hold is looked up in the store, so either
// coordinator sharing a store answers for any campaign — live local runs
// stay authoritative because the local record is always at least as fresh
// as the stored one.
func (e *Engine) Get(id string) (Campaign, bool) {
	r := e.run(id)
	if r == nil {
		if e.opts.Shared {
			if rec, err := e.store.Campaign(id); err == nil {
				return rec, true
			}
		}
		return Campaign{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rec, true
}

// List returns every campaign's record, sorted by submission sequence — a
// stable order for repeated polls, across restarts included. Under Shared
// the listing merges in campaigns other engines submitted to the store,
// with this engine's own live records taking precedence.
func (e *Engine) List() []Campaign {
	e.mu.Lock()
	rs := make([]*run, 0, len(e.runs))
	for _, r := range e.runs {
		rs = append(rs, r)
	}
	e.mu.Unlock()
	out := make([]Campaign, 0, len(rs))
	local := make(map[string]struct{}, len(rs))
	for _, r := range rs {
		r.mu.Lock()
		out = append(out, r.rec)
		local[r.rec.ID] = struct{}{}
		r.mu.Unlock()
	}
	if e.opts.Shared {
		if recs, err := e.store.Campaigns(); err == nil {
			for _, rec := range recs {
				if _, ok := local[rec.ID]; !ok {
					out = append(out, rec)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Result returns a campaign's stored artifact; ErrNotFound covers both an
// unknown ID and a campaign without a result (still running, cancelled, or
// failed before completion). Under Shared the ID need not be local: a
// finished sibling's artifact is served from the store, bytes identical.
func (e *Engine) Result(id string) (*campaign.Result, error) {
	if e.run(id) == nil && !e.opts.Shared {
		return nil, ErrNotFound
	}
	return e.store.Result(id)
}

// LookupJob returns the job result stored under key, if any — the worker
// read-through seam: a worker consults its store before executing, so a
// job a sibling already finished anywhere in the fleet is served, not
// recomputed.
func (e *Engine) LookupJob(key string) (campaign.JobResult, bool) {
	jr, err := e.store.Job(key)
	if err != nil {
		return campaign.JobResult{}, false
	}
	return jr, true
}

// SaveJob stores a completed job's result under its content key. A failed
// put only costs a future recomputation, so errors are not surfaced.
func (e *Engine) SaveJob(key string, jr campaign.JobResult) {
	_ = e.store.PutJob(key, jr)
}

// Cancel requests cancellation of a running campaign; it reports whether
// the ID is known (cancelling a finished campaign is a no-op).
func (e *Engine) Cancel(id string) bool {
	r := e.run(id)
	if r == nil {
		return false
	}
	r.mu.Lock()
	cancel := r.cancel
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// Subscribe registers for a campaign's events; the channel closes when the
// campaign finishes. live is false when the campaign has already finished
// (or the ID is unknown) — the caller reads the terminal state via Get.
func (e *Engine) Subscribe(id string) (ch <-chan Event, unsubscribe func(), live bool) {
	r := e.run(id)
	if r == nil {
		return nil, func() {}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, func() {}, false
	}
	c := make(chan Event, 64)
	r.subs[c] = struct{}{}
	return c, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		delete(r.subs, c)
	}, true
}

// jobRunner adapts the engine's Runner — if one is configured — to the
// campaign pool's per-job seam, pinning the campaign's resolved trace hash
// into every job's key. Nil (the single-node, in-process case) keeps
// execution inside campaign's own pool. Under Shared every execution path —
// dispatched or local — is wrapped in the store's job-lease protocol, so
// engines racing the same job key execute it at most once between them.
func (e *Engine) jobRunner(traceHash string) campaign.JobRunner {
	runner := e.opts.Runner
	if !e.opts.Shared {
		if runner == nil {
			return nil
		}
		return &jobDispatch{runner: runner, traceHash: traceHash, m: &e.metrics}
	}
	if runner == nil {
		runner = &countedLocalRunner{local: &LocalRunner{Traces: e.opts.Traces}, m: &e.metrics}
	}
	leased := &leaseRunner{inner: runner, store: e.store, owner: e.owner, ttl: e.opts.LeaseTTL, m: &e.metrics}
	return &jobDispatch{runner: leased, traceHash: traceHash, m: &e.metrics}
}

// cache builds the one-campaign JobCache view of the store.
func (e *Engine) cache(traceHash string) campaign.JobCache {
	return &storeCache{store: e.store, traceHash: traceHash, m: &e.metrics}
}

// jobDispatch is the campaign.JobRunner view of an engine Runner: it
// computes the job's content key and forwards.
type jobDispatch struct {
	runner    Runner
	traceHash string
	m         *engineMetrics
}

// RunJob implements campaign.JobRunner.
func (d *jobDispatch) RunJob(ctx context.Context, spec campaign.Spec, job campaign.Job) (campaign.JobResult, error) {
	d.m.jobKeys.Inc()
	return d.runner.RunJob(ctx, JobKey(spec, job, d.traceHash), spec, job)
}

// storeCache adapts the Store to campaign.JobCache for one campaign run,
// pinning the resolved trace hash into every key.
type storeCache struct {
	store     Store
	traceHash string
	m         *engineMetrics
}

// Lookup implements campaign.JobCache.
func (c *storeCache) Lookup(spec campaign.Spec, job campaign.Job) (campaign.JobResult, bool) {
	c.m.jobKeys.Inc()
	jr, err := c.store.Job(JobKey(spec, job, c.traceHash))
	if err != nil {
		c.m.cacheMisses.Inc()
		return campaign.JobResult{}, false
	}
	c.m.cacheHits.Inc()
	return jr, true
}

// Store implements campaign.JobCache. A failed put only costs a future
// recomputation, so it is not allowed to fail the job that just succeeded.
func (c *storeCache) Store(spec campaign.Spec, job campaign.Job, jr campaign.JobResult) {
	c.m.jobKeys.Inc()
	_ = c.store.PutJob(JobKey(spec, job, c.traceHash), jr)
}

// ResolveOptions tunes a synchronous Resolve.
type ResolveOptions struct {
	// Workers bounds the pool (0 = the engine default).
	Workers int
	// Traces overrides the engine's trace opener (nil = the engine's).
	Traces campaign.TraceOpener
	// OnProgress, when set, receives each job-completion event.
	OnProgress func(campaign.Progress)
}

// ResolveStats reports how a Resolve was served.
type ResolveStats struct {
	// Jobs is the campaign's job count.
	Jobs int
	// CacheHits counts jobs served from the store; Jobs - CacheHits
	// were executed.
	CacheHits int
}

// Resolve runs spec synchronously through the job-result store without
// registering a campaign: every job is served from the store when its key
// is present and executed (and stored) when it is not. The figure endpoints
// and the CLI's -statedir path use it — overlapping sweeps share results
// with each other and with submitted campaigns.
func (e *Engine) Resolve(ctx context.Context, spec campaign.Spec, opts ResolveOptions) (*campaign.Result, ResolveStats, error) {
	traces := opts.Traces
	if traces == nil {
		traces = e.opts.Traces
	}
	var traceHash string
	if spec.TraceRef != "" {
		th, err := resolveTraceHash(traces, spec.TraceRef)
		if err != nil {
			return nil, ResolveStats{}, err
		}
		traceHash = th
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = e.opts.Workers
	}

	// OnProgress calls are serialised by the pool and complete before Run
	// returns, so stats needs no locking of its own.
	var stats ResolveStats
	res, err := campaign.Run(ctx, spec, campaign.RunOptions{
		Workers: workers,
		Traces:  traces,
		Cache:   e.cache(traceHash),
		Runner:  e.jobRunner(traceHash),
		Metrics: e.opts.Metrics,
		OnProgress: func(p campaign.Progress) {
			if p.Cached {
				stats.CacheHits++
			}
			if opts.OnProgress != nil {
				opts.OnProgress(p)
			}
		},
	})
	if err != nil {
		return nil, ResolveStats{}, err
	}
	stats.Jobs = len(res.Jobs)
	return res, stats, nil
}

// ResolveCampaign is the internal/experiments runner seam: Resolve with the
// engine's defaults, failing on the first job error like the experiments'
// own direct runner does.
func (e *Engine) ResolveCampaign(ctx context.Context, spec campaign.Spec, workers int) (*campaign.Result, error) {
	res, _, err := e.Resolve(ctx, spec, ResolveOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	return res, nil
}
