package sim

import "fmt"

// Kernel identifies one implementation of the sweeping inner loop (§6.2,
// Figure 7).
type Kernel int

const (
	// KernelSimple is the naive loop of §3.3: load word, test tag,
	// shadow lookup, conditional store. Data-dependent branches make it
	// compute bound (28% of read bandwidth in the paper).
	KernelSimple Kernel = iota

	// KernelUnrolled is the unrolled, software-pipelined loop (32%).
	KernelUnrolled

	// KernelVector is the AVX2-style kernel: 28 instructions per 64-byte
	// line, but an unconditional store per line makes it behave like
	// memcpy, saturating at copy bandwidth (~8 GiB/s, roughly constant).
	KernelVector
)

// String returns the figure label for the kernel.
func (k Kernel) String() string {
	switch k {
	case KernelSimple:
		return "Simple loop"
	case KernelUnrolled:
		return "Unrolling + manual pipelining"
	case KernelVector:
		return "AVX2"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// KernelCost is the calibrated per-kernel cost structure.
type KernelCost struct {
	Kernel Kernel
	// InstrPerWord is the average instruction cost of examining one
	// 64-bit word, including the shadow lookup and (mispredicted)
	// branches for the scalar kernels.
	InstrPerWord float64
	// StoresAllLines marks kernels that write every line back
	// unconditionally (the vector kernel), doubling DRAM traffic.
	StoresAllLines bool
}

// Costs returns the calibrated cost model for the kernel. Calibration:
// utilisation = readBW_achieved/readBW_peak from §6.2 at the x86 machine's
// 11.6 G instr/s gives instructions/word.
func (k Kernel) Costs() KernelCost {
	switch k {
	case KernelSimple:
		// 28% of 19,405 MiB/s = 712 M words/s at 11.6 G instr/s.
		return KernelCost{Kernel: k, InstrPerWord: 16.3}
	case KernelUnrolled:
		// 32% utilisation.
		return KernelCost{Kernel: k, InstrPerWord: 14.3}
	case KernelVector:
		// 28 instructions per 8-word line (§6.2), unconditional store.
		return KernelCost{Kernel: k, InstrPerWord: 3.5, StoresAllLines: true}
	default:
		return KernelCost{Kernel: k, InstrPerWord: 16.3}
	}
}

// SweepWork is the event-count summary of one revocation sweep, produced by
// internal/revoke and priced by Machine.SweepTime.
type SweepWork struct {
	WordsProcessed uint64 // words the kernel examined
	BytesRead      uint64 // data bytes fetched from memory
	BytesWritten   uint64 // bytes stored (revocations, or all lines for vector)
	TagProbes      uint64 // CLoadTags probes issued
	PageRuns       uint64 // contiguous page runs entered
	Shards         int    // parallel sweep width (≥1)

	// TrafficModelled marks work measured through the cache-hierarchy
	// model (Figure 10): DRAMReadBytes/DRAMWriteBytes are then the actual
	// line fills and write-backs the sweep generated — including tag-table
	// fills and net of cache hits — and SweepTime prices memory time from
	// them instead of the analytic byte counts above.
	TrafficModelled bool
	DRAMReadBytes   uint64
	DRAMWriteBytes  uint64
}

// SweepTime prices one sweep on the machine under the given kernel: the
// maximum of compute time and DRAM time (the sweep is either compute or
// bandwidth bound), plus per-run and per-probe costs and fixed startup.
// Parallel shards divide compute linearly but share DRAM bandwidth (§3.5).
func (m Machine) SweepTime(kc KernelCost, w SweepWork) float64 {
	shards := float64(1)
	if w.Shards > 1 {
		shards = float64(w.Shards)
		if max := float64(m.Threads); shards > max {
			shards = max
		}
	}
	instr := float64(w.WordsProcessed) * kc.InstrPerWord
	compute := instr / (m.FreqHz * m.IPC) / shards
	var dram float64
	switch {
	case w.TrafficModelled:
		// Measured traffic already reflects cache hits and the kernel's
		// store behaviour; price fills at streaming read bandwidth and
		// write-backs at copy bandwidth.
		dram = float64(w.DRAMReadBytes)/m.DRAMReadBW + float64(w.DRAMWriteBytes)/m.DRAMCopyBW
	case kc.StoresAllLines:
		dram = float64(w.BytesRead+w.BytesWritten) / m.DRAMCopyBW
	default:
		dram = float64(w.BytesRead)/m.DRAMReadBW + float64(w.BytesWritten)/m.DRAMCopyBW
	}
	t := compute
	if dram > t {
		t = dram
	}
	t += float64(w.TagProbes) * m.TagProbe / shards
	t += float64(w.PageRuns) * m.PageRunSwitch / shards
	t += m.SweepStartup
	return t
}

// SweepBandwidth reports the effective read bandwidth (bytes/s) the sweep
// achieved over the bytes it covered, Figure 7's y-axis (there in MiB/s).
func (m Machine) SweepBandwidth(kc KernelCost, w SweepWork) float64 {
	t := m.SweepTime(kc, w)
	if t == 0 {
		return 0
	}
	return float64(w.BytesRead) / t
}
