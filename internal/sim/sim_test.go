package sim

import "testing"

// sweepOf builds the work summary for a dense sweep of n bytes.
func sweepOf(bytes uint64, k Kernel) SweepWork {
	w := SweepWork{
		WordsProcessed: bytes / 8,
		BytesRead:      bytes,
		PageRuns:       1,
		Shards:         1,
	}
	if k == KernelVector {
		w.BytesWritten = bytes
	}
	return w
}

func TestKernelStrings(t *testing.T) {
	if KernelSimple.String() != "Simple loop" || KernelVector.String() != "AVX2" {
		t.Error("kernel labels changed; Figure 7 output depends on them")
	}
}

func TestSweepBandwidthOrdering(t *testing.T) {
	// Figure 7: simple < unrolled < vector on large sweeps.
	m := X86()
	const bytes = 1 << 30
	var bw [3]float64
	for i, k := range []Kernel{KernelSimple, KernelUnrolled, KernelVector} {
		bw[i] = m.SweepBandwidth(k.Costs(), sweepOf(bytes, k))
	}
	if !(bw[0] < bw[1] && bw[1] < bw[2]) {
		t.Errorf("bandwidth ordering violated: %v", bw)
	}
}

func TestSweepKernelCalibration(t *testing.T) {
	// §6.2 reports ~28%, ~32% utilisation and ~8 GiB/s for the three
	// kernels; the model must land near those anchors on a large sweep.
	m := X86()
	const bytes = 1 << 30
	peak := m.DRAMReadBW
	checks := []struct {
		k      Kernel
		lo, hi float64 // utilisation window
	}{
		{KernelSimple, 0.24, 0.32},
		{KernelUnrolled, 0.28, 0.36},
		{KernelVector, 0.36, 0.46},
	}
	for _, c := range checks {
		util := m.SweepBandwidth(c.k.Costs(), sweepOf(bytes, c.k)) / peak
		if util < c.lo || util > c.hi {
			t.Errorf("%v utilisation = %.3f, want in [%.2f, %.2f]", c.k, util, c.lo, c.hi)
		}
	}
}

func TestVectorKernelRoughlyConstant(t *testing.T) {
	// §6.2: "the performance of the AVX2 loop is roughly constant at
	// almost 8 GiB/s" — large sweeps of different sizes must agree.
	m := X86()
	kc := KernelVector.Costs()
	b1 := m.SweepBandwidth(kc, sweepOf(1<<28, KernelVector))
	b2 := m.SweepBandwidth(kc, sweepOf(1<<31, KernelVector))
	if ratio := b1 / b2; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("vector bandwidth varies: %.0f vs %.0f MiB/s", b1/MiB, b2/MiB)
	}
	if gib := b2 / (1 << 30); gib < 7 || gib > 9 {
		t.Errorf("vector bandwidth = %.2f GiB/s, want ~8", gib)
	}
}

func TestSmallSweepsUnderutilise(t *testing.T) {
	// §6.2: mcf and milc "see lower bandwidth utilisation, as their
	// small, infrequent sweeping loops do not reach full throughput."
	m := X86()
	kc := KernelVector.Costs()
	big := m.SweepBandwidth(kc, sweepOf(1<<30, KernelVector))
	small := sweepOf(1<<22, KernelVector)
	small.PageRuns = 512 // fragmented dirty set
	if got := m.SweepBandwidth(kc, small); got >= big*0.8 {
		t.Errorf("small fragmented sweep %.0f MiB/s not clearly below %.0f MiB/s", got/MiB, big/MiB)
	}
}

func TestParallelShardsDivideCompute(t *testing.T) {
	// A compute-bound kernel must speed up with shards; the bound is
	// DRAM bandwidth (§3.5).
	m := X86()
	kc := KernelSimple.Costs()
	w := sweepOf(1<<30, KernelSimple)
	t1 := m.SweepTime(kc, w)
	w.Shards = 4
	t4 := m.SweepTime(kc, w)
	if t4 >= t1 {
		t.Errorf("4 shards (%.3fms) not faster than 1 (%.3fms)", t4*1e3, t1*1e3)
	}
	// Never faster than the DRAM floor.
	floor := float64(w.BytesRead) / m.DRAMReadBW
	if t4 < floor {
		t.Errorf("parallel sweep %.3fms beat the DRAM floor %.3fms", t4*1e3, floor*1e3)
	}
	// Shards clamp at the machine's thread count.
	w.Shards = 1000
	if m.SweepTime(kc, w) < floor {
		t.Error("absurd shard count beat the DRAM floor")
	}
}

func TestTagProbeCost(t *testing.T) {
	m := X86()
	kc := KernelSimple.Costs()
	w := SweepWork{TagProbes: 1 << 20, Shards: 1}
	base := m.SweepTime(kc, SweepWork{Shards: 1})
	if got := m.SweepTime(kc, w); got <= base {
		t.Error("tag probes cost nothing")
	}
}

func TestMachineDescriptions(t *testing.T) {
	x, c := X86(), CHERIFPGA()
	if x.FreqHz != 2.9e9 || x.Cores != 4 || x.Threads != 8 || x.LLC != 8<<20 {
		t.Errorf("x86 Table 1 mismatch: %+v", x)
	}
	if c.FreqHz != 100e6 || c.Cores != 1 || c.LLC != 256<<10 {
		t.Errorf("FPGA Table 1 mismatch: %+v", c)
	}
	if x.DRAMReadBW != 19405*MiB {
		t.Errorf("x86 read bandwidth = %f, want 19405 MiB/s", x.DRAMReadBW/MiB)
	}
	if c.QuarantineCost >= c.FreeCost {
		t.Error("quarantine insert must be cheaper than a real free (§6.1.1)")
	}
	if x.QuarantineCost >= x.FreeCost {
		t.Error("quarantine insert must be cheaper than a real free (§6.1.1)")
	}
}
