// Package sim holds the machine timing model: the system descriptions of
// Table 1 and the calibrated cost model that converts event counts (words
// swept, lines fetched, shadow stores, allocator operations) into simulated
// seconds. Correctness in this reproduction is always functional — tags
// really are cleared — while *time* is an overlay computed here, never a
// wall clock, so every figure is deterministic.
//
// Calibration sources:
//   - Table 1: clock rates, core counts, LLC sizes, memory technology;
//   - §6.2 / Figure 7: the x86 system's 19,405 MiB/s read bandwidth and the
//     measured sweep-kernel utilisations (28% simple, 32% unrolled, ~8 GiB/s
//     vectorised, the latter limited by memory-copy behaviour because the
//     AVX2 kernel stores unconditionally);
//   - §6.3 / Figure 8: the ~10-cycle CLoadTags round trip on the FPGA.
package sim

// Machine describes one evaluation system (Table 1).
type Machine struct {
	Name    string
	FreqHz  float64 // core clock
	IPC     float64 // sustained instructions/cycle in the sweep kernels
	Cores   int
	Threads int
	LLC     uint64 // last-level cache bytes

	// DRAMReadBW is the streaming read bandwidth in bytes/s.
	DRAMReadBW float64
	// DRAMCopyBW is the sustained read+write (memcpy-like) total
	// bandwidth in bytes/s; kernels that store unconditionally are bound
	// by it.
	DRAMCopyBW float64

	// LLCMissPenalty is the added latency of an off-core access, in
	// seconds (used by the quarantine cache-effect model).
	LLCMissPenalty float64

	// SweepStartup is the fixed per-sweep cost (entering the runtime,
	// reading the CapDirty page list, fencing) in seconds.
	SweepStartup float64
	// PageRunSwitch is the cost of starting a new run of contiguous
	// pages during a sweep (TLB/prefetch ramp), in seconds. Fragmented
	// dirty-page sets (low pointer density) pay it often, which is why
	// mcf and milc fall short of full bandwidth in Figure 7.
	PageRunSwitch float64
	// TagProbe is the CLoadTags round-trip cost in seconds (§6.3: ~10
	// cycles on the FPGA prototype).
	TagProbe float64

	// SweepContention is the fraction of a concurrently-running sweep's
	// duration that still slows the main thread (shared LLC and DRAM
	// bandwidth), for §3.5's run-alongside-execution mode. Zero on
	// single-core machines, where concurrency is impossible.
	SweepContention float64

	// Allocator operation costs in seconds, for the overhead
	// decomposition (Figure 6).
	MallocCost     float64
	FreeCost       float64 // a real dlmalloc free
	QuarantineCost float64 // detaining a chunk (“typically less than half
	// the execution time of a real free”, §6.1.1)
	ShadowStoreCost float64 // one shadow-map store (word or bit RMW)
}

// MiB is 2^20 bytes, the paper's bandwidth unit.
const MiB = 1 << 20

// X86 returns the paper's x86-64 evaluation system: Intel Core i7-7820HK,
// 2.9 GHz, 4 cores / 8 threads, 8 MiB LLC, DDR4-2400, measured 19,405 MiB/s
// read bandwidth (§6.2), running FreeBSD 12.0.
func X86() Machine {
	cycle := 1 / 2.9e9
	return Machine{
		Name:            "x86-64 i7-7820HK",
		FreqHz:          2.9e9,
		IPC:             4,
		Cores:           4,
		Threads:         8,
		LLC:             8 << 20,
		DRAMReadBW:      19405 * MiB,
		DRAMCopyBW:      16600 * MiB, // sustained memcpy total (read+write)
		LLCMissPenalty:  70e-9,
		SweepStartup:    20e-6,
		PageRunSwitch:   600 * cycle,
		TagProbe:        40 * cycle, // deeper x86 hierarchy than the FPGA's 10 cycles
		SweepContention: 0.18,
		MallocCost:      55e-9,
		FreeCost:        45e-9,
		QuarantineCost:  20e-9,
		ShadowStoreCost: 2.5e-9,
	}
}

// CHERIFPGA returns the CHERI prototype of Table 1: Stratix IV FPGA at
// 100 MHz, single in-order scalar core, 256 KiB LLC, 1 GiB DDR2.
func CHERIFPGA() Machine {
	cycle := 1 / 100e6
	return Machine{
		Name:            "CHERI Stratix IV FPGA",
		FreqHz:          100e6,
		IPC:             0.7,
		Cores:           1,
		Threads:         1,
		LLC:             256 << 10,
		DRAMReadBW:      800 * MiB,
		DRAMCopyBW:      700 * MiB,
		LLCMissPenalty:  350e-9,
		SweepStartup:    200e-6,
		PageRunSwitch:   1200 * cycle,
		TagProbe:        10 * cycle, // §6.3: ~10-cycle round trip
		SweepContention: 0,          // single core: no spare thread to sweep on
		MallocCost:      900e-9,
		FreeCost:        700e-9,
		QuarantineCost:  350e-9,
		ShadowStoreCost: 40e-9,
	}
}
