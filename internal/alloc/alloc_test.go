package alloc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

const heapBase = uint64(0x10000000)

func newAlloc(t *testing.T) *Allocator {
	t.Helper()
	a, err := New(mem.New(), heapBase)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMallocBasics(t *testing.T) {
	a := newAlloc(t)
	addr, padded, err := a.Malloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if addr%Granule != 0 {
		t.Errorf("addr %#x not granule-aligned", addr)
	}
	if padded != 32 {
		t.Errorf("padded = %d, want 32", padded)
	}
	if a.LiveBytes() != 32 || a.LiveCount() != 1 {
		t.Errorf("live = %d bytes / %d allocs", a.LiveBytes(), a.LiveCount())
	}
	if s, ok := a.SizeOf(addr); !ok || s != 32 {
		t.Errorf("SizeOf = %d, %v", s, ok)
	}
	// Zero-size mallocs return a minimal chunk, like malloc(0).
	if _, padded, err = a.Malloc(0); err != nil || padded != Granule {
		t.Errorf("Malloc(0) padded = %d, err %v", padded, err)
	}
}

func TestMallocMapsSimulatedPages(t *testing.T) {
	m := mem.New()
	a, err := New(m, heapBase)
	if err != nil {
		t.Fatal(err)
	}
	addr, _, err := a.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Mapped(addr) {
		t.Error("allocation address not backed by a mapped page")
	}
}

func TestFreeRecycles(t *testing.T) {
	a := newAlloc(t)
	addr, _, _ := a.Malloc(64)
	if err := a.Free(addr); err != nil {
		t.Fatal(err)
	}
	addr2, _, _ := a.Malloc(64)
	if addr2 != addr {
		t.Errorf("freed chunk not reused: got %#x, want %#x", addr2, addr)
	}
}

func TestDoubleFree(t *testing.T) {
	a := newAlloc(t)
	addr, _, _ := a.Malloc(64)
	if err := a.Free(addr); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(addr); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free: got %v", err)
	}
	if err := a.Free(heapBase + 0x999000); !errors.Is(err, ErrBadFree) {
		t.Errorf("wild free: got %v", err)
	}
}

func TestSplitAndCoalesce(t *testing.T) {
	a := newAlloc(t)
	// Three adjacent allocations.
	p1, _, _ := a.Malloc(64)
	p2, _, _ := a.Malloc(64)
	p3, _, _ := a.Malloc(64)
	if p2 != p1+64 || p3 != p2+64 {
		t.Fatalf("allocations not adjacent: %#x %#x %#x", p1, p2, p3)
	}
	// Free outer two, then middle: all three must coalesce.
	must(t, a.Free(p1))
	must(t, a.Free(p3))
	must(t, a.Free(p2))
	if a.stats.Coalesces < 2 {
		t.Errorf("Coalesces = %d, want >= 2", a.stats.Coalesces)
	}
	// A 192-byte request must fit in the coalesced chunk without growth.
	grows := a.stats.HeapGrows
	big, _, err := a.Malloc(192)
	if err != nil {
		t.Fatal(err)
	}
	if big != p1 {
		t.Errorf("coalesced chunk not reused: got %#x, want %#x", big, p1)
	}
	if a.stats.HeapGrows != grows {
		t.Error("heap grew despite coalesced free space")
	}
}

func TestBestFitPrefersSmallBins(t *testing.T) {
	a := newAlloc(t)
	small, _, _ := a.Malloc(32)
	_, _, _ = a.Malloc(16) // spacer so chunks do not coalesce
	large, _, _ := a.Malloc(1024)
	must(t, a.Free(small))
	must(t, a.Free(large))
	// A 32-byte request must take the 32-byte chunk, not carve the 1 KiB.
	got, _, _ := a.Malloc(32)
	if got != small {
		t.Errorf("got %#x, want the small chunk %#x", got, small)
	}
}

func TestMallocAligned(t *testing.T) {
	a := newAlloc(t)
	_, _, _ = a.Malloc(48) // misalign the heap top
	mask := ^uint64(1<<12 - 1)
	addr, _, err := a.MallocAligned(1<<12, mask)
	if err != nil {
		t.Fatal(err)
	}
	if addr&^mask != 0 {
		t.Errorf("addr %#x not 4 KiB aligned", addr)
	}
	must(t, a.CheckInvariants())
	// The skipped head must still be allocatable.
	small, _, _ := a.Malloc(16)
	if small >= addr {
		t.Errorf("head gap not reused: small alloc at %#x, aligned at %#x", small, addr)
	}
}

func TestReleaseAndFreeRange(t *testing.T) {
	a := newAlloc(t)
	p1, s1, _ := a.Malloc(64)
	p2, s2, _ := a.Malloc(64)
	sz, err := a.Release(p1)
	if err != nil || sz != s1 {
		t.Fatalf("Release = %d, %v", sz, err)
	}
	if a.LiveCount() != 1 {
		t.Errorf("LiveCount = %d", a.LiveCount())
	}
	// Released memory is NOT reusable until FreeRange (quarantine model).
	p3, _, _ := a.Malloc(64)
	if p3 == p1 {
		t.Fatal("released chunk reused before FreeRange")
	}
	if _, err := a.Release(p2); err != nil {
		t.Fatal(err)
	}
	a.FreeRange(p1, s1)
	a.FreeRange(p2, s2) // coalesces with p1's range
	got, _, _ := a.Malloc(128)
	if got != p1 {
		t.Errorf("coalesced drained range not reused: got %#x, want %#x", got, p1)
	}
	must(t, a.CheckInvariants())
}

func TestHeapGrowth(t *testing.T) {
	a := newAlloc(t)
	_, _, err := a.Malloc(3 * growQuantum)
	if err != nil {
		t.Fatal(err)
	}
	if a.MappedBytes() < 3*growQuantum {
		t.Errorf("MappedBytes = %d", a.MappedBytes())
	}
	if a.HeapBytes() < 3*growQuantum {
		t.Errorf("HeapBytes = %d", a.HeapBytes())
	}
	if a.stats.PeakHeap != a.HeapBytes() {
		t.Errorf("PeakHeap = %d, want %d", a.stats.PeakHeap, a.HeapBytes())
	}
}

func TestBinForClasses(t *testing.T) {
	cases := []struct {
		size uint64
		bin  int
	}{
		{16, 0},
		{32, 1},
		{512, 31},
		{513, nSmallBins},
		{1024, nSmallBins},
		{1025, nSmallBins + 1},
		{1 << 20, nSmallBins + 10},
	}
	for _, c := range cases {
		if got := binFor(c.size); got != c.bin {
			t.Errorf("binFor(%d) = %d, want %d", c.size, got, c.bin)
		}
	}
}

func TestQuickMallocFreeChurn(t *testing.T) {
	// Random malloc/free interleavings keep the allocator consistent and
	// never hand out overlapping chunks.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, err := New(mem.New(), heapBase)
		if err != nil {
			return false
		}
		type span struct{ addr, size uint64 }
		var liveList []span
		for i := 0; i < 400; i++ {
			if len(liveList) == 0 || r.Intn(3) != 0 {
				size := uint64(1 + r.Intn(2048))
				addr, padded, err := a.Malloc(size)
				if err != nil {
					return false
				}
				for _, s := range liveList {
					if addr < s.addr+s.size && s.addr < addr+padded {
						t.Logf("overlap: new [%#x,+%#x) vs live [%#x,+%#x)", addr, padded, s.addr, s.size)
						return false
					}
				}
				liveList = append(liveList, span{addr, padded})
			} else {
				i := r.Intn(len(liveList))
				if err := a.Free(liveList[i].addr); err != nil {
					return false
				}
				liveList = append(liveList[:i], liveList[i+1:]...)
			}
		}
		return a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickDrainCycle(t *testing.T) {
	// Release-all / FreeRange-all cycles must return the heap to a state
	// where everything is reusable (no leak of address space).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, err := New(mem.New(), heapBase)
		if err != nil {
			return false
		}
		for round := 0; round < 5; round++ {
			type span struct{ addr, size uint64 }
			var spans []span
			for i := 0; i < 100; i++ {
				addr, padded, err := a.Malloc(uint64(1 + r.Intn(512)))
				if err != nil {
					return false
				}
				spans = append(spans, span{addr, padded})
			}
			for _, s := range spans {
				if _, err := a.Release(s.addr); err != nil {
					return false
				}
			}
			for _, s := range spans {
				a.FreeRange(s.addr, s.size)
			}
			if a.LiveBytes() != 0 {
				return false
			}
		}
		if err := a.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		// All heap bytes must be back on the free lists.
		return a.FreeBytes() == a.HeapBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
