package alloc

import (
	"testing"

	"repro/internal/mem"
)

func newTyped(t *testing.T) *Allocator {
	t.Helper()
	a, err := NewWithOptions(mem.New(), heapBase, Options{TypedReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTypedReuseSameClassOnly(t *testing.T) {
	a := newTyped(t)
	p, _, _ := a.Malloc(64)
	must(t, a.Free(p))
	// Same size: reused.
	q, _, _ := a.Malloc(64)
	if q != p {
		t.Errorf("same-class request not reused: got %#x, want %#x", q, p)
	}
	must(t, a.Free(q))
	// Different class: must NOT reuse the freed 64-byte chunk.
	r, _, _ := a.Malloc(32)
	if r == p {
		t.Error("cross-class reuse: 32-byte request got the freed 64-byte chunk")
	}
	must(t, a.CheckInvariants())
}

func TestTypedReuseNeverSplits(t *testing.T) {
	a := newTyped(t)
	big, _, _ := a.Malloc(4096)
	must(t, a.Free(big))
	// A smaller request in the same geometric bin class must not carve
	// the 4 KiB chunk.
	small, _, _ := a.Malloc(64)
	if small == big {
		t.Error("typed allocator split a freed chunk")
	}
	// The original size is still reusable intact.
	again, _, _ := a.Malloc(4096)
	if again != big {
		t.Errorf("exact-size reuse failed: got %#x, want %#x", again, big)
	}
}

func TestTypedReuseNeverCoalesces(t *testing.T) {
	a := newTyped(t)
	p1, _, _ := a.Malloc(64)
	p2, _, _ := a.Malloc(64)
	must(t, a.Free(p1))
	must(t, a.Free(p2))
	if a.stats.Coalesces != 0 {
		t.Errorf("typed allocator coalesced %d times", a.stats.Coalesces)
	}
	// A 128-byte request cannot use the two adjacent 64-byte chunks.
	q, _, _ := a.Malloc(128)
	if q == p1 {
		t.Error("typed allocator merged freed chunks")
	}
}

func TestTypedReuseFragmentationCost(t *testing.T) {
	// The price of type stability: a size-migrating workload grows the
	// heap where the classic allocator recycles. This is the trade-off
	// the Cling extension benchmark quantifies.
	classic := newAlloc(t)
	typed := newTyped(t)
	churn := func(a *Allocator) uint64 {
		for round := 0; round < 8; round++ {
			size := uint64(32 << round) // sizes migrate each round
			var addrs []uint64
			for i := 0; i < 64; i++ {
				p, _, err := a.Malloc(size)
				if err != nil {
					t.Fatal(err)
				}
				addrs = append(addrs, p)
			}
			for _, p := range addrs {
				must(t, a.Free(p))
			}
		}
		return a.HeapBytes()
	}
	ch, th := churn(classic), churn(typed)
	if th <= ch {
		t.Errorf("typed heap %d not larger than classic %d under size migration", th, ch)
	}
}

func TestTypedReuseInvariantsUnderChurn(t *testing.T) {
	a := newTyped(t)
	var live []uint64
	for i := 0; i < 2000; i++ {
		if i%3 != 0 || len(live) == 0 {
			p, _, err := a.Malloc(uint64(16 * (1 + i%32)))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		} else {
			must(t, a.Free(live[len(live)-1]))
			live = live[:len(live)-1]
		}
	}
	must(t, a.CheckInvariants())
}
