// Package alloc implements the heap-allocator substrate: a dlmalloc-style
// best-fit allocator with binned free lists, splitting and constant-time
// boundary coalescing, operating on the simulated tagged memory. The
// CheriVoke wrapper in this package extends it with CHERIvoke's quarantine
// and shadow-map maintenance (the paper's dlmalloc_cherivoke, §5.2).
//
// Like real dlmalloc, the allocator hands out 16-byte-granule-aligned
// chunks; unlike it, bookkeeping lives beside (not inside) the simulated
// heap. The allocator is part of CHERIvoke's trusted computing base (§3.6),
// so its metadata being out-of-band does not change the security argument,
// and it keeps the simulated heap image purely application data, which the
// sweep-measurement code relies on.
package alloc

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// Granule is the allocation granule and minimum alignment (16 bytes).
const Granule = 16

// Allocation-size binning: bins 0..31 hold exact sizes 16..512; bins 32+
// hold geometric classes, one per power of two above 512.
const (
	nSmallBins   = 32
	maxSmall     = nSmallBins * Granule
	nBins        = nSmallBins + 32
	growQuantum  = 64 * mem.PageSize // map simulated pages in 256 KiB steps
	maxHeapBytes = uint64(1) << 40   // sanity cap for the simulated heap
)

// Sentinel errors.
var (
	// ErrBadFree reports a free of an address that is not a live
	// allocation (double free or wild free).
	ErrBadFree = errors.New("alloc: free of non-allocated address")

	// ErrOOM reports simulated-heap exhaustion.
	ErrOOM = errors.New("alloc: out of simulated heap")
)

// Stats counts allocator activity.
type Stats struct {
	Mallocs     uint64
	Frees       uint64 // direct frees (non-quarantined path)
	Releases    uint64 // detachments to quarantine
	FreeRanges  uint64 // raw coalesced ranges recycled after a sweep
	Splits      uint64
	Coalesces   uint64
	HeapGrows   uint64
	BinRescans  uint64 // stale lazy-bin entries skipped
	PeakLive    uint64
	PeakHeap    uint64
	BytesAlloc  uint64 // cumulative bytes requested
	BytesPadded uint64 // cumulative bytes actually provisioned
}

type binEntry struct {
	addr uint64
	size uint64
}

// Options selects allocator policy variations.
type Options struct {
	// TypedReuse enables Cling-style type-stable reuse (§7.4/§8 of the
	// paper, [2]): a freed chunk may only satisfy requests of the same
	// size class, chunks never split or coalesce across classes, and so
	// a use-after-reallocation can only confuse two objects of the same
	// shape — partial temporal safety with no sweeping at all, at a
	// fragmentation cost the extension benchmarks quantify.
	TypedReuse bool
}

// Allocator is the dlmalloc-style allocator. It is not safe for concurrent
// use; CHERIvoke serialises allocation against sweeps anyway.
type Allocator struct {
	mem      *mem.Memory
	opt      Options
	base     uint64            // heap base address
	top      uint64            // first never-allocated address (sbrk pointer)
	limit    uint64            // end of mapped region
	bins     [nBins][]binEntry // lazy LIFO stacks; validity = maps below
	byAddr   map[uint64]uint64 // free chunk start -> size (source of truth)
	byEnd    map[uint64]uint64 // free chunk exclusive end -> start
	live     map[uint64]uint64 // allocation addr -> size
	liveSize uint64
	stats    Stats
}

// New returns an allocator managing a heap that starts at base (which must
// be page-aligned) in m and grows upward as needed.
func New(m *mem.Memory, base uint64) (*Allocator, error) {
	return NewWithOptions(m, base, Options{})
}

// NewWithOptions is New with explicit policy options.
func NewWithOptions(m *mem.Memory, base uint64, opt Options) (*Allocator, error) {
	if base%mem.PageSize != 0 {
		return nil, fmt.Errorf("alloc: heap base %#x not page-aligned", base)
	}
	return &Allocator{
		mem:    m,
		opt:    opt,
		base:   base,
		top:    base,
		limit:  base,
		byAddr: make(map[uint64]uint64),
		byEnd:  make(map[uint64]uint64),
		live:   make(map[uint64]uint64),
	}, nil
}

// Base returns the heap base address.
func (a *Allocator) Base() uint64 { return a.base }

// HeapBytes returns the current heap extent (base to sbrk top), the paper's
// "heap size" denominator for the quarantine fraction.
func (a *Allocator) HeapBytes() uint64 { return a.top - a.base }

// MappedBytes returns the mapped region size (top rounded up to the grow
// quantum).
func (a *Allocator) MappedBytes() uint64 { return a.limit - a.base }

// LiveBytes returns the bytes currently held by live allocations.
func (a *Allocator) LiveBytes() uint64 { return a.liveSize }

// LiveCount returns the number of live allocations.
func (a *Allocator) LiveCount() int { return len(a.live) }

// Stats returns a snapshot of the activity counters.
func (a *Allocator) Stats() Stats { return a.stats }

func binFor(size uint64) int {
	if size <= maxSmall {
		return int(size/Granule) - 1
	}
	b := nSmallBins + bits.Len64(size-1) - 10
	if b >= nBins {
		b = nBins - 1
	}
	return b
}

// roundUp pads a request to a whole number of granules (minimum one).
func roundUp(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	return (size + Granule - 1) &^ (Granule - 1)
}

// insertFree adds [addr, addr+size) to the free structure, coalescing with
// both neighbours (unless typed reuse forbids cross-class merging), and
// pushes the result on its bin.
func (a *Allocator) insertFree(addr, size uint64) {
	if a.opt.TypedReuse {
		a.byAddr[addr] = size
		a.byEnd[addr+size] = addr
		b := binFor(size)
		a.bins[b] = append(a.bins[b], binEntry{addr, size})
		return
	}
	if left, ok := a.byEnd[addr]; ok {
		lsize := a.byAddr[left]
		delete(a.byAddr, left)
		delete(a.byEnd, addr)
		addr = left
		size += lsize
		a.stats.Coalesces++
	}
	if rsize, ok := a.byAddr[addr+size]; ok {
		delete(a.byEnd, addr+size+rsize)
		delete(a.byAddr, addr+size)
		size += rsize
		a.stats.Coalesces++
	}
	a.byAddr[addr] = size
	a.byEnd[addr+size] = addr
	b := binFor(size)
	a.bins[b] = append(a.bins[b], binEntry{addr, size})
}

// takeFree removes the free chunk starting at addr from the maps (its lazy
// bin entry is skipped later).
func (a *Allocator) takeFree(addr uint64) uint64 {
	size := a.byAddr[addr]
	delete(a.byAddr, addr)
	delete(a.byEnd, addr+size)
	return size
}

// popFit pops a valid free chunk of at least size bytes whose aligned start
// fits, searching bins from the request's class upward. It returns the chunk
// or ok=false.
func (a *Allocator) popFit(size, alignMask uint64) (binEntry, bool) {
	lastBin := nBins
	if a.opt.TypedReuse {
		// Type-stable reuse: only the request's own class, and only
		// exact-size chunks, may be recycled.
		lastBin = binFor(size) + 1
	}
	for b := binFor(size); b < lastBin; b++ {
		bin := a.bins[b]
		var skipped []binEntry
		for len(bin) > 0 {
			e := bin[len(bin)-1]
			bin = bin[:len(bin)-1]
			cur, ok := a.byAddr[e.addr]
			if !ok || cur != e.size {
				// Stale entry left behind by coalescing.
				a.stats.BinRescans++
				continue
			}
			aligned := alignUp(e.addr, alignMask)
			fits := aligned+size <= e.addr+e.size
			if a.opt.TypedReuse {
				// Exact reuse only: no splitting a larger chunk
				// for a smaller (differently-shaped) request.
				fits = e.addr == aligned && e.size == size
			}
			if fits {
				a.bins[b] = append(bin, skipped...)
				a.takeFree(e.addr)
				return e, true
			}
			// Valid but the aligned request does not fit; keep it.
			skipped = append(skipped, e)
			a.stats.BinRescans++
		}
		a.bins[b] = append(bin[:0], skipped...)
	}
	return binEntry{}, false
}

func alignUp(addr, alignMask uint64) uint64 {
	if alignMask == ^uint64(0) || alignMask == 0 {
		return addr
	}
	granule := ^alignMask + 1
	return (addr + granule - 1) & alignMask
}

// Malloc allocates size bytes (padded to the granule) and returns the chunk
// address and its provisioned size.
func (a *Allocator) Malloc(size uint64) (addr, padded uint64, err error) {
	return a.MallocAligned(size, ^uint64(0))
}

// MallocAligned allocates size bytes at an address satisfying
// addr & ^alignMask == 0. CHERIvoke uses it to place large allocations at
// capability-representable alignment.
func (a *Allocator) MallocAligned(size, alignMask uint64) (addr, padded uint64, err error) {
	req := size
	size = roundUp(size)
	if e, ok := a.popFit(size, alignMask); ok {
		addr = alignUp(e.addr, alignMask)
		// Return any head and tail slack to the free lists.
		if head := addr - e.addr; head > 0 {
			a.insertFree(e.addr, head)
			a.stats.Splits++
		}
		if tail := e.addr + e.size - (addr + size); tail > 0 {
			a.insertFree(addr+size, tail)
			a.stats.Splits++
		}
	} else {
		addr, err = a.grow(size, alignMask)
		if err != nil {
			return 0, 0, err
		}
	}
	a.live[addr] = size
	a.liveSize += size
	a.stats.Mallocs++
	a.stats.BytesAlloc += req
	a.stats.BytesPadded += size
	if a.liveSize > a.stats.PeakLive {
		a.stats.PeakLive = a.liveSize
	}
	if h := a.HeapBytes(); h > a.stats.PeakHeap {
		a.stats.PeakHeap = h
	}
	return addr, size, nil
}

// grow extends the heap top to satisfy an allocation no free chunk fits.
func (a *Allocator) grow(size, alignMask uint64) (uint64, error) {
	addr := alignUp(a.top, alignMask)
	newTop := addr + size
	if newTop-a.base > maxHeapBytes {
		return 0, fmt.Errorf("alloc: heap would reach %d bytes: %w", newTop-a.base, ErrOOM)
	}
	if newTop > a.limit {
		grow := (newTop - a.limit + growQuantum - 1) / growQuantum * growQuantum
		if err := a.mem.Map(a.limit, grow); err != nil {
			return 0, fmt.Errorf("alloc: growing heap: %w", err)
		}
		a.limit += grow
		a.stats.HeapGrows++
	}
	if head := addr - a.top; head > 0 {
		// Alignment skipped over a gap; keep it allocatable.
		a.insertFree(a.top, head)
	}
	a.top = newTop
	return addr, nil
}

// SizeOf returns the provisioned size of the live allocation at addr.
func (a *Allocator) SizeOf(addr uint64) (uint64, bool) {
	s, ok := a.live[addr]
	return s, ok
}

// Free immediately recycles the allocation at addr (the insecure, classic
// dlmalloc path used by the baseline configuration).
func (a *Allocator) Free(addr uint64) error {
	size, err := a.detach(addr)
	if err != nil {
		return err
	}
	a.stats.Frees++
	a.insertFree(addr, size)
	return nil
}

// Release detaches the allocation at addr without recycling it, returning
// its provisioned size. CHERIvoke's free() uses it to move the chunk into
// quarantine instead of the free lists (§3.1).
func (a *Allocator) Release(addr uint64) (uint64, error) {
	size, err := a.detach(addr)
	if err != nil {
		return 0, err
	}
	a.stats.Releases++
	return size, nil
}

func (a *Allocator) detach(addr uint64) (uint64, error) {
	size, ok := a.live[addr]
	if !ok {
		return 0, fmt.Errorf("alloc: free(%#x): %w", addr, ErrBadFree)
	}
	delete(a.live, addr)
	a.liveSize -= size
	return size, nil
}

// FreeRange recycles a raw (possibly multi-allocation, already-coalesced)
// address range. The revocation sweep calls it for each drained quarantine
// chunk; thanks to quarantine-side aggregation this is typically far fewer
// operations than the program's frees (§6.1.1).
func (a *Allocator) FreeRange(addr, size uint64) {
	a.stats.FreeRanges++
	a.insertFree(addr, size)
}

// ForEachLive calls f for every live allocation in unspecified order.
func (a *Allocator) ForEachLive(f func(addr, size uint64)) {
	for addr, size := range a.live {
		f(addr, size)
	}
}

// FreeBytes returns the bytes currently on the free lists.
func (a *Allocator) FreeBytes() uint64 {
	var sum uint64
	for _, s := range a.byAddr {
		sum += s
	}
	return sum
}

// CheckInvariants verifies internal consistency: free chunks are disjoint,
// byAddr and byEnd agree, and live+free+never-allocated partitions the heap.
// Tests call it after workloads.
func (a *Allocator) CheckInvariants() error {
	for addr, size := range a.byAddr {
		if back, ok := a.byEnd[addr+size]; !ok || back != addr {
			return fmt.Errorf("alloc: byEnd missing/disagrees for chunk %#x+%#x", addr, size)
		}
		if _, isLive := a.live[addr]; isLive {
			return fmt.Errorf("alloc: %#x both live and free", addr)
		}
	}
	if len(a.byAddr) != len(a.byEnd) {
		return fmt.Errorf("alloc: byAddr/byEnd size mismatch %d/%d", len(a.byAddr), len(a.byEnd))
	}
	var sum uint64
	for _, s := range a.live {
		sum += s
	}
	if sum != a.liveSize {
		return fmt.Errorf("alloc: liveSize %d != sum %d", a.liveSize, sum)
	}
	if sum+a.FreeBytes() > a.HeapBytes() {
		return fmt.Errorf("alloc: live %d + free %d exceeds heap %d", sum, a.FreeBytes(), a.HeapBytes())
	}
	return nil
}
