package model

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRuntimeOverheadEquation(t *testing.T) {
	// 371 MiB/s freed at 86% density against ~5.4 GiB/s scan rate and a
	// 25% quarantine: xalancbmk's sweeping cost lands in the tens of
	// percent, as in Figure 6.
	got := RuntimeOverhead(371*(1<<20), 0.86, 5.4e9, 0.25)
	if got < 0.15 || got > 0.40 {
		t.Errorf("xalancbmk predicted sweep overhead %.3f outside [0.15, 0.40]", got)
	}
	// Degenerate inputs.
	if RuntimeOverhead(1, 1, 0, 0.25) != 0 || RuntimeOverhead(1, 1, 1e9, 0) != 0 {
		t.Error("degenerate inputs must predict zero")
	}
}

func TestOverheadScalesInverselyWithQuarantine(t *testing.T) {
	a := RuntimeOverhead(100e6, 0.5, 8e9, 0.25)
	b := RuntimeOverhead(100e6, 0.5, 8e9, 0.50)
	if ratio := a / b; ratio < 1.99 || ratio > 2.01 {
		t.Errorf("doubling quarantine must halve overhead; ratio = %.3f", ratio)
	}
}

func TestQuarantineFractionForInverts(t *testing.T) {
	free, dens, scan := 371*float64(1<<20), 0.86, 5.4e9
	target := 0.10
	q := QuarantineFractionFor(target, free, dens, scan)
	back := RuntimeOverhead(free, dens, scan, q)
	if diff := back - target; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("inversion error: %.3g", diff)
	}
}

func TestScanRateOrdering(t *testing.T) {
	m := sim.X86()
	s := ScanRate(m, sim.KernelSimple)
	v := ScanRate(m, sim.KernelVector)
	if !(s < v) {
		t.Errorf("scan rates: simple %.0f >= vector %.0f", s, v)
	}
	if v < 6e9 || v > 10e9 {
		t.Errorf("vector scan rate %.2f GiB/s, want ~8", v/(1<<30))
	}
}

func TestPredictProfileIdentifiesExpensiveBenchmarks(t *testing.T) {
	// §6.1.3: xalancbmk, omnetpp, dealII and soplex are "the only
	// benchmarks with over 5% execution time overhead, as suggested by
	// the model". ffmpeg's high free rate is offset by low density.
	m := sim.X86()
	over := map[string]float64{}
	for _, p := range workload.All() {
		over[p.Name] = PredictProfile(p, m, sim.KernelVector, 0.25)
	}
	for _, name := range []string{"xalancbmk", "omnetpp"} {
		if over[name] < 0.05 {
			t.Errorf("%s predicted %.3f, want > 0.05", name, over[name])
		}
	}
	for _, name := range []string{"ffmpeg", "bzip2", "hmmer", "povray", "gobmk"} {
		if over[name] > 0.05 {
			t.Errorf("%s predicted %.3f, want <= 0.05", name, over[name])
		}
	}
	if over["xalancbmk"] <= over["dealII"] {
		t.Error("xalancbmk must out-cost dealII (higher rate and density)")
	}
}
