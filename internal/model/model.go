// Package model implements the paper's analytic overhead model (§6.1.3):
//
//	RuntimeOverhead ≈ (FreeRate · PointerDensity) / (ScanRate · QuarantineFraction)
//
// The numerator is the application-specific cost factor; the denominator is
// the machine's effective sweep bandwidth times the tunable quarantine
// fraction. The model both predicts measured sweeping overheads (validated
// against Figure 6 in tests) and inverts: given a target overhead, it yields
// the quarantine fraction — and hence heap growth — required (Figure 9's
// trade-off).
package model

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// RuntimeOverhead evaluates the paper's equation. freeRate and scanRate are
// in bytes/second; pointerDensity is the fraction of memory that must be
// swept (page-granularity density when only PTE CapDirty is used);
// quarantineFraction is the quarantine-to-heap ratio. The result is the
// fractional execution-time overhead attributable to sweeping (0.05 = 5%).
func RuntimeOverhead(freeRate, pointerDensity, scanRate, quarantineFraction float64) float64 {
	if scanRate <= 0 || quarantineFraction <= 0 {
		return 0
	}
	return freeRate * pointerDensity / (scanRate * quarantineFraction)
}

// QuarantineFractionFor inverts the model: the quarantine fraction needed to
// hold sweeping overhead at target for the given application cost factor.
func QuarantineFractionFor(target, freeRate, pointerDensity, scanRate float64) float64 {
	if target <= 0 || scanRate <= 0 {
		return 0
	}
	return freeRate * pointerDensity / (scanRate * target)
}

// PredictProfile applies the model to a workload profile on a machine: the
// free rate and page-granularity pointer density come from Table 2, and the
// scan rate is the machine's sweep bandwidth under the given kernel on a
// large dense sweep.
func PredictProfile(p workload.Profile, m sim.Machine, k sim.Kernel, quarantineFraction float64) float64 {
	scan := ScanRate(m, k)
	return RuntimeOverhead(p.FreeRateMiB*(1<<20), p.PageDensity, scan, quarantineFraction)
}

// ScanRate returns the machine's asymptotic sweep bandwidth (bytes/s) for a
// kernel: the model's ScanRate term.
func ScanRate(m sim.Machine, k sim.Kernel) float64 {
	const probe = uint64(1) << 30
	w := sim.SweepWork{
		WordsProcessed: probe / 8,
		BytesRead:      probe,
		PageRuns:       1,
		Shards:         1,
	}
	if k == sim.KernelVector {
		w.BytesWritten = probe
	}
	return m.SweepBandwidth(k.Costs(), w)
}
