package repro

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// auditedPackages lists the packages held to full exported-identifier doc
// coverage: every exported function, method (on an exported type), type,
// and const/var declaration must carry a doc comment (a group comment on
// the enclosing declaration counts for its members). New packages join
// this list as their doc.go audit lands; the docs-lint CI job runs this
// test alongside the link check.
var auditedPackages = []string{
	"internal/campaign",
	"internal/engine",
	"internal/engine/storetest",
	"internal/livetrace",
	"internal/obs",
	"internal/revoke",
	"internal/server",
	"internal/testutil",
	"internal/workload",
}

// TestDocsExportedIdentifiersDocumented is the doc.go audit as an enforced
// gate rather than a one-off review: it fails on any exported identifier
// in an audited package that lacks a doc comment.
func TestDocsExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range auditedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					lintDecl(t, fset, decl)
				}
			}
		}
	}
}

// lintDecl reports every undocumented exported identifier introduced by
// one top-level declaration.
func lintDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && exportedReceiver(d) && d.Doc == nil {
			report(t, fset, d.Pos(), d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					report(t, fset, s.Pos(), s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					// A group comment on the const/var block
					// documents all of its members.
					if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(t, fset, name.Pos(), name.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a function is free-standing or a method
// on an exported type — methods on unexported types are not part of the
// public surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if idx, ok := typ.(*ast.IndexExpr); ok { // generic receiver
		typ = idx.X
	}
	ident, ok := typ.(*ast.Ident)
	return !ok || ident.IsExported()
}

func report(t *testing.T, fset *token.FileSet, pos token.Pos, name string) {
	t.Helper()
	t.Errorf("%s: exported identifier %s has no doc comment", fset.Position(pos), name)
}
