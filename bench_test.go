// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices DESIGN.md
// calls out. Each benchmark drives the same experiment constructors as
// cmd/cherivoke and reports the headline simulated metrics via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the paper's
// numbers alongside the reproduction's own execution cost.
package repro

import (
	"encoding/binary"
	"testing"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/quarantine"
	"repro/internal/revoke"
	"repro/internal/shadow"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

func benchOpts() experiments.Options { return experiments.Quick() }

// BenchmarkTable2Metadata regenerates Table 2 and reports the measured
// aggregate free rate.
func BenchmarkTable2Metadata(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var rate float64
		for _, r := range rows {
			rate += r.MeasuredFreeRateMiB
		}
		b.ReportMetric(rate, "MiB-freed/s-total")
	}
}

// BenchmarkFig5ExecutionTime regenerates Figure 5a and reports CHERIvoke's
// geomean normalised execution time (paper: 1.047).
func BenchmarkFig5ExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var cv []float64
		for _, r := range rows {
			cv = append(cv, r.CheriVoke.Runtime)
		}
		b.ReportMetric(experiments.Geomean(cv), "geomean-exec-time")
	}
}

// BenchmarkFig5Memory regenerates Figure 5b and reports CHERIvoke's geomean
// normalised memory utilisation (paper: ~1.125).
func BenchmarkFig5Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var m []float64
		for _, r := range rows {
			m = append(m, r.CheriVoke.Memory)
		}
		b.ReportMetric(experiments.Geomean(m), "geomean-memory")
	}
}

// BenchmarkFig6Decomposition regenerates Figure 6 and reports the worst-case
// total (paper: 1.51, xalancbmk).
func BenchmarkFig6Decomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		decs, err := experiments.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, d := range decs {
			if d.PlusSweep > worst {
				worst = d.PlusSweep
			}
		}
		b.ReportMetric(worst, "worst-exec-time")
	}
}

// BenchmarkFig7SweepKernels regenerates Figure 7, with one sub-benchmark per
// kernel reporting the best simulated bandwidth in MiB/s.
func BenchmarkFig7SweepKernels(b *testing.B) {
	for _, k := range []sim.Kernel{sim.KernelSimple, sim.KernelUnrolled, sim.KernelVector} {
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig7(benchOpts())
				if err != nil {
					b.Fatal(err)
				}
				best := 0.0
				for _, r := range rows {
					if bw := r.Bandwidth[k]; bw > best {
						best = bw
					}
				}
				b.ReportMetric(best/sim.MiB, "MiB/s-best")
			}
		})
	}
}

// BenchmarkFig8SweepProportion regenerates Figure 8a, reporting the mean
// swept proportion under CLoadTags.
func BenchmarkFig8SweepProportion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.Tags
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-swept-proportion")
	}
}

// BenchmarkFig8AssistSpeedup regenerates Figure 8b, reporting the CLoadTags
// probe overhead at full density (normalised time minus 1).
func BenchmarkFig8AssistSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig8b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(last.Tags-1, "cloadtags-overhead-at-full-density")
	}
}

// BenchmarkFig9TradeOff regenerates Figure 9, reporting xalancbmk's
// execution time at 200% heap overhead.
func BenchmarkFig9TradeOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Xalancbmk, "xalancbmk-at-200pct")
	}
}

// BenchmarkFig10Traffic regenerates Figure 10, reporting the worst traffic
// overhead (paper: ~16-18%, xalancbmk).
func BenchmarkFig10Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range rows {
			if r.TrafficOverheadPct > worst {
				worst = r.TrafficOverheadPct
			}
		}
		b.ReportMetric(worst, "worst-traffic-pct")
	}
}

// BenchmarkAnalyticModel evaluates §6.1.3's closed-form model across all
// profiles (it is nanoseconds; the benchmark documents that the model is
// effectively free compared to measurement).
func BenchmarkAnalyticModel(b *testing.B) {
	profiles := workload.All()
	machine := sim.X86()
	sum := 0.0
	for i := 0; i < b.N; i++ {
		for _, p := range profiles {
			sum += p.FreeRateMiB * p.PageDensity / (8e9 / (1 << 20) * 0.25)
		}
	}
	_ = machine
	b.ReportMetric(sum/float64(b.N*len(profiles)), "mean-model-overhead")
}

// --- Ablation benches (DESIGN.md §6) ---

// BenchmarkAblationPainting compares the run-optimised shadow-map painter
// (§5.2: byte/word stores for aligned runs) against the naive per-bit
// painter, on the chunk-size mixture of a small-object workload.
func BenchmarkAblationPainting(b *testing.B) {
	const base, size = uint64(0x10000000), uint64(32 << 20)
	chunks := make([]quarantine.Chunk, 0, 4096)
	addr := base
	for i := 0; addr+4096 < base+size; i++ {
		sz := uint64(16 + i%64*16)
		chunks = append(chunks, quarantine.Chunk{Addr: addr, Size: sz})
		addr += sz + 16
	}
	b.Run("optimised", func(b *testing.B) {
		m, _ := shadow.New(base, size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, c := range chunks {
				if err := m.Paint(c.Addr, c.Size); err != nil {
					b.Fatal(err)
				}
			}
			m.ClearAll()
		}
		b.ReportMetric(float64(len(chunks)), "chunks/op")
	})
	b.Run("naive", func(b *testing.B) {
		m, _ := shadow.New(base, size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, c := range chunks {
				if err := m.PaintNaive(c.Addr, c.Size); err != nil {
					b.Fatal(err)
				}
			}
			m.ClearAll()
		}
		b.ReportMetric(float64(len(chunks)), "chunks/op")
	})
}

// BenchmarkAblationCoalescing measures quarantine insertion with adjacent
// (coalescing) versus scattered (non-coalescing) free patterns — the
// batching effect of §6.1.1.
func BenchmarkAblationCoalescing(b *testing.B) {
	const n = 4096
	b.Run("adjacent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf := quarantine.New()
			for j := uint64(0); j < n; j++ {
				if err := buf.Insert(0x10000000+j*64, 64); err != nil {
					b.Fatal(err)
				}
			}
			if got := buf.Len(); got != 1 {
				b.Fatalf("adjacent inserts left %d chunks", got)
			}
			b.ReportMetric(float64(n)/float64(buf.Stats().DrainedOut+uint64(buf.Len())), "frees-per-chunk")
			buf.Drain()
		}
	})
	b.Run("scattered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf := quarantine.New()
			for j := uint64(0); j < n; j++ {
				if err := buf.Insert(0x10000000+j*128, 64); err != nil {
					b.Fatal(err)
				}
			}
			if got := buf.Len(); got != n {
				b.Fatalf("scattered inserts coalesced to %d chunks", got)
			}
			buf.Drain()
		}
	})
}

// ablationHeap builds a populated CHERIvoke system for sweep ablations.
func ablationHeap(b *testing.B, cfg revoke.Config) *core.System {
	b.Helper()
	sys, err := core.New(core.Config{
		Policy: quarantine.Policy{Fraction: 0.25, MinBytes: 64 << 10},
		Revoke: cfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	p, _ := workload.ByName("omnetpp")
	if _, err := workload.Run(sys, p, workload.Options{MaxLiveBytes: 8 << 20, MinSweeps: 1}); err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkAblationAssists sweeps the same heap image with neither assist,
// CapDirty only, CLoadTags only, and both (§6.3).
func BenchmarkAblationAssists(b *testing.B) {
	cases := []struct {
		name string
		cfg  revoke.Config
	}{
		{"none", revoke.Config{}},
		{"capdirty", revoke.Config{UseCapDirty: true}},
		{"cloadtags", revoke.Config{UseCLoadTags: true}},
		{"both", revoke.Config{UseCapDirty: true, UseCLoadTags: true}},
	}
	machine := sim.X86()
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			sys := ablationHeap(b, c.cfg)
			sw := revoke.New(sys.Mem(), sys.Shadow(), c.cfg)
			b.ResetTimer()
			var simSeconds float64
			for i := 0; i < b.N; i++ {
				st, err := sw.Sweep(nil)
				if err != nil {
					b.Fatal(err)
				}
				simSeconds = machine.SweepTime(c.cfg.Kernel.Costs(), st.Work(1))
				b.ReportMetric(float64(st.BytesRead), "bytes-swept/op")
			}
			b.ReportMetric(simSeconds*1e6, "sim-us/sweep")
		})
	}
}

// BenchmarkAblationParallelSweep shards the sweep across 1–8 goroutines
// (§3.5) and reports both host time and simulated time.
func BenchmarkAblationParallelSweep(b *testing.B) {
	machine := sim.X86()
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := revoke.Config{UseCapDirty: true, Shards: shards}
		b.Run(map[int]string{1: "shards-1", 2: "shards-2", 4: "shards-4", 8: "shards-8"}[shards], func(b *testing.B) {
			sys := ablationHeap(b, cfg)
			sw := revoke.New(sys.Mem(), sys.Shadow(), cfg)
			b.ResetTimer()
			var simSeconds float64
			for i := 0; i < b.N; i++ {
				st, err := sw.Sweep(nil)
				if err != nil {
					b.Fatal(err)
				}
				simSeconds = machine.SweepTime(cfg.Kernel.Costs(), st.Work(shards))
			}
			b.ReportMetric(simSeconds*1e6, "sim-us/sweep")
		})
	}
}

// BenchmarkExtensionVariants prices the §8 extension directions end to end
// on the worst-case workload, reporting each variant's normalised execution
// time.
func BenchmarkExtensionVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Extensions(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Runtime, "x-"+shortName(r.Name))
		}
	}
}

func shortName(s string) string {
	switch s {
	case "CHERIvoke (stop-the-world)":
		return "stw"
	case "CHERIvoke + concurrent sweep":
		return "concurrent"
	case "CHERIvoke + unmap large frees":
		return "unmap"
	case "Cling-style typed reuse only":
		return "cling"
	default:
		return "direct"
	}
}

// BenchmarkVMPrograms measures the capability virtual machine executing a
// malloc/free loop that triggers automatic revocations.
func BenchmarkVMPrograms(b *testing.B) {
	prog := []vm.Instr{
		{Op: vm.OpMovXI, Xd: 1, Imm: 0},
		{Op: vm.OpMovXI, Xd: 2, Imm: 256},
		{Op: vm.OpMalloc, Cd: 1, Imm: 2048},
		{Op: vm.OpMovXI, Xd: 3, Imm: 42},
		{Op: vm.OpStoreW, Ca: 1, Xa: 3},
		{Op: vm.OpFree, Ca: 1},
		{Op: vm.OpAddX, Xd: 1, Xa: 1, Imm: 1},
		{Op: vm.OpBeqX, Xa: 1, Xb: 2, Imm: 9},
		{Op: vm.OpJmp, Imm: 2},
		{Op: vm.OpHalt},
	}
	for i := 0; i < b.N; i++ {
		sys, err := core.New(core.Config{
			Policy: quarantine.Policy{Fraction: 0.25, MinBytes: 64 << 10},
		})
		if err != nil {
			b.Fatal(err)
		}
		m := vm.New(sys)
		if err := m.Run(prog, 1<<20); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Steps()), "instrs/op")
	}
}

// BenchmarkTraceRecordReplay measures trace capture and replay of an
// omnetpp run.
func BenchmarkTraceRecordReplay(b *testing.B) {
	p, _ := workload.ByName("omnetpp")
	var tr workload.Trace
	sys, err := core.New(core.Config{Policy: quarantine.Policy{Fraction: 0.25, MinBytes: 64 << 10}})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := workload.Run(sys, p, workload.Options{
		MinSweeps: 1, MaxLiveBytes: 2 << 20, Record: &tr,
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replaySys, err := core.New(core.Config{Policy: quarantine.Policy{Fraction: 0.25, MinBytes: 64 << 10}})
		if err != nil {
			b.Fatal(err)
		}
		n, err := workload.Replay(replaySys, &tr)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "events/op")
	}
}

// loopStream serves a binary trace header once, then cycles a fixed body of
// pre-encoded event records forever, never emitting the end record. It lets
// BenchmarkBinaryTraceDecode construct one reader outside the timer and
// count single Next calls, so allocs/op is exactly the per-record decode
// cost.
type loopStream struct {
	header []byte
	body   []byte
	pos    int
}

func (l *loopStream) Read(p []byte) (int, error) {
	if len(l.header) > 0 {
		n := copy(p, l.header)
		l.header = l.header[n:]
		return n, nil
	}
	if l.pos == len(l.body) {
		l.pos = 0
	}
	n := copy(p, l.body[l.pos:])
	l.pos += n
	return n, nil
}

// BenchmarkBinaryTraceDecode measures the CVTR binary decode hot loop in
// isolation. The regression baseline pins allocs/op at zero: the reader owns
// a reusable payload buffer, so Next never touches the heap per record.
func BenchmarkBinaryTraceDecode(b *testing.B) {
	header := []byte(workload.TraceMagic)
	header = binary.AppendUvarint(header, uint64(workload.TraceVersion))
	header = binary.AppendUvarint(header, workload.DefaultSeed)
	header = binary.AppendUvarint(header, 0) // empty name
	var body []byte
	for i := 0; i < 64; i++ {
		var payload []byte
		var op byte
		switch i % 3 {
		case 0:
			op = workload.EvMalloc
			payload = binary.AppendUvarint(payload, uint64(1024+i))
		case 1:
			op = workload.EvPlant
			payload = binary.AppendUvarint(payload, uint64(i))
			payload = binary.AppendUvarint(payload, uint64(i*16))
		default:
			op = workload.EvFree
			payload = binary.AppendUvarint(payload, uint64(i))
		}
		body = append(body, op)
		body = binary.AppendUvarint(body, uint64(len(payload)))
		body = append(body, payload...)
	}
	r, err := workload.NewBinaryTraceReader(&loopStream{header: header, body: body})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCapabilityOps measures the raw capability substrate: bounds
// compression round trips and checked memory operations.
func BenchmarkCapabilityOps(b *testing.B) {
	root := cap.MustRoot(0, 1<<48)
	b.Run("setbounds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := root.SetBounds(uint64(i%1024)*4096+0x10000000, 4096); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-decode", func(b *testing.B) {
		c, _ := root.SetBounds(0x10000000, 4096)
		for i := 0; i < b.N; i++ {
			lo, hi := c.Encode()
			c = cap.Decode(lo, hi, true)
		}
	})
	b.Run("checked-store", func(b *testing.B) {
		m := mem.New()
		if err := m.Map(0x10000000, 1<<20); err != nil {
			b.Fatal(err)
		}
		c, _ := root.SetBounds(0x10000000, 1<<20)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.StoreWord(c, 0x10000000+uint64(i%4096)*8, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
