// Store benchmarks: per-backend operation latency, lease-protocol
// throughput under contention, and the end-to-end shared-store fleet
// rate. These are the numbers the shared-store fast path (group commit,
// read caching, fsync-free leases) exists to move, gated like the paper
// benches via cmd/benchgate (see docs/BENCHMARKS.md).
package repro

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/engine"
)

// benchStoreKinds enumerates the backends the per-op benches cover.
var benchStoreKinds = []string{"mem", "sqlite", "blob"}

// openBenchStore builds a fresh store of the named kind under b's temp dir.
func openBenchStore(b *testing.B, kind string) engine.Store {
	b.Helper()
	switch kind {
	case "mem":
		return engine.NewMemStore()
	case "sqlite":
		s, err := engine.OpenSQLiteStore(filepath.Join(b.TempDir(), "store.db"), b.Logf)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		return s
	case "blob":
		s, err := engine.OpenBlobStore(b.TempDir(), b.Logf)
		if err != nil {
			b.Fatal(err)
		}
		return s
	default:
		b.Fatalf("unknown store kind %q", kind)
		return nil
	}
}

// benchJobKey returns a well-formed 64-hex job key encoding n.
func benchJobKey(n int) string { return fmt.Sprintf("%064x", n) }

// benchJR builds a representative job record for n.
func benchJR(n int) campaign.JobResult {
	return campaign.JobResult{
		Job:        campaign.Job{ID: n, Profile: "povray", Seed: uint64(n)},
		AppSeconds: 1.5,
		Mallocs:    1 << 16,
		Frees:      1 << 15,
	}
}

// BenchmarkStorePutJob measures one durable job write per backend — on
// sqlite, a full group-commit cycle (flock, append, fsync) with no
// batchmates to share it.
func BenchmarkStorePutJob(b *testing.B) {
	for _, kind := range benchStoreKinds {
		b.Run(kind, func(b *testing.B) {
			s := openBenchStore(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.PutJob(benchJobKey(i), benchJR(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreGetJob measures a repeated read of one record per backend
// — the path the clean-skip fstat fast path (sqlite) and the read cache
// (cached variant) collapse.
func BenchmarkStoreGetJob(b *testing.B) {
	kinds := append(append([]string{}, benchStoreKinds...), "sqlite-cached")
	for _, kind := range kinds {
		b.Run(kind, func(b *testing.B) {
			var s engine.Store
			if kind == "sqlite-cached" {
				s = engine.NewCachedStore(openBenchStore(b, "sqlite"), 1<<20)
			} else {
				s = openBenchStore(b, kind)
			}
			key := benchJobKey(1)
			if err := s.PutJob(key, benchJR(1)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Job(key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreLeaseCycle measures one acquire/release hand-off per
// backend — on sqlite, two fsync-free lease commits.
func BenchmarkStoreLeaseCycle(b *testing.B) {
	for _, kind := range benchStoreKinds {
		b.Run(kind, func(b *testing.B) {
			s := openBenchStore(b, kind)
			key := benchJobKey(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.AcquireJobLease(key, "bench", time.Minute); err != nil {
					b.Fatal(err)
				}
				if err := s.ReleaseJobLease(key, "bench"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreWriteContention measures N goroutines writing distinct
// jobs through one sqlite handle — the group committer's home turf: the
// writers queue behind one leader and share flock windows and fsyncs.
// fsyncs/op reports how well the batching folds them.
func BenchmarkStoreWriteContention(b *testing.B) {
	s, err := engine.OpenSQLiteStore(filepath.Join(b.TempDir(), "store.db"), b.Logf)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	base := s.Fsyncs()
	var seq int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := int(atomic.AddInt64(&seq, 1))
			if err := s.PutJob(benchJobKey(10000+n), benchJR(n)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(s.Fsyncs()-base)/float64(b.N), "fsyncs/op")
	}
}

// BenchmarkSharedStoreFleet is the end-to-end number: two engines — two
// coordinators in miniature — share one sqlite file and race one
// campaign. jobs/sec is the fleet's aggregate completion rate;
// fsyncs/job is the acceptance metric the fast path reduced ≥3x.
func BenchmarkSharedStoreFleet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := engine.OpenSQLiteStore(filepath.Join(b.TempDir(), fmt.Sprintf("fleet%d.db", i)), b.Logf)
		if err != nil {
			b.Fatal(err)
		}
		opts := engine.Options{Shared: true, SkipRecovery: true, LeaseTTL: 5 * time.Second}
		ea, err := engine.New(s, opts)
		if err != nil {
			b.Fatal(err)
		}
		eb, err := engine.New(s, opts)
		if err != nil {
			b.Fatal(err)
		}
		spec := campaign.Spec{
			Name:      "storebench",
			Profiles:  []string{"povray", "xalancbmk"},
			MaxLive:   []uint64{1 << 20},
			Seeds:     []uint64{1, 2, 3, 4, 5, 6},
			MinSweeps: 1,
			MaxEvents: 10000,
		}
		jobs, err := spec.Jobs()
		if err != nil {
			b.Fatal(err)
		}
		base := s.Fsyncs()
		b.StartTimer()
		start := time.Now()
		recA, err := ea.Submit(spec, 2)
		if err != nil {
			b.Fatal(err)
		}
		recB, err := eb.Submit(spec, 2)
		if err != nil {
			b.Fatal(err)
		}
		waitDone(b, ea, recA.ID)
		waitDone(b, eb, recB.ID)
		elapsed := time.Since(start)
		b.StopTimer()
		b.ReportMetric(float64(len(jobs))/elapsed.Seconds(), "jobs/sec")
		b.ReportMetric(float64(s.Fsyncs()-base)/float64(len(jobs)), "fsyncs/job")
		s.Close()
		b.StartTimer()
	}
}

// waitDone polls e until campaign id leaves the running states.
func waitDone(b *testing.B, e *engine.Engine, id string) {
	b.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		rec, ok := e.Get(id)
		if !ok {
			b.Fatalf("campaign %s vanished", id)
		}
		if rec.State == engine.StateDone {
			return
		}
		if rec.State == engine.StateFailed || rec.State == engine.StateCancelled {
			b.Fatalf("campaign %s ended in state %q: %s", id, rec.State, rec.Error)
		}
		if time.Now().After(deadline) {
			b.Fatalf("campaign %s still %q after 2m", id, rec.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
