// uafattack reproduces the use-after-free attack of Figure 1 of the paper —
// a reallocated "vtable" overwritten with an attacker-controlled function
// pointer — and shows CHERIvoke defeating it.
//
// The scenario, in the C++ terms of the paper:
//
//  1. an object with a vtable pointer is deleted; a dangling pointer to it
//     survives;
//  2. the allocator reuses the memory for a buffer the attacker fills over
//     the network;
//  3. a second delete through the dangling pointer jumps through what it
//     believes is the vtable — now attacker data — handing over control.
//
// Run with: go run ./examples/uafattack
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/quarantine"
)

// evilEntry is the attacker's chosen jump target.
const evilEntry = uint64(0xBAD00000)

// victim models the C++ object: word 0 is its vtable pointer (stored as a
// capability to the vtable object).
type victim struct {
	obj    cap.Capability
	vtable cap.Capability
}

func newVictim(sys *core.System) (*victim, error) {
	vt, err := sys.Malloc(32) // the "vtable": destructor entry at word 0
	if err != nil {
		return nil, err
	}
	if err := sys.Mem().StoreWord(vt, vt.Base(), 0x00D7001); err != nil {
		return nil, err
	}
	obj, err := sys.Malloc(64)
	if err != nil {
		return nil, err
	}
	if err := sys.Mem().StoreCap(obj, obj.Base(), vt); err != nil {
		return nil, err
	}
	return &victim{obj: obj, vtable: vt}, nil
}

// destructorEntry follows the object's vtable pointer and reads the entry the
// program would jump to — the attack's control-flow pivot.
func destructorEntry(sys *core.System, obj cap.Capability) (uint64, error) {
	vt, err := sys.Mem().LoadCap(obj, obj.Base())
	if err != nil {
		return 0, err
	}
	return sys.Mem().LoadWord(vt, vt.Addr())
}

func attack(sys *core.System, label string) {
	fmt.Printf("--- %s ---\n", label)
	v, err := newVictim(sys)
	if err != nil {
		log.Fatal(err)
	}
	// The program keeps a stale second pointer to the object (the bug).
	dangling := v.obj
	sys.AddRoot(&dangling)

	// delete: the object is freed...
	if err := sys.Free(v.obj); err != nil {
		log.Fatal(err)
	}
	// ...and under CHERIvoke a revocation cycle runs before the
	// allocator may reuse the address space.
	if _, err := sys.Revoke(); err != nil && !errors.Is(err, core.ErrInvalidFree) {
		log.Fatal(err)
	}

	// The attacker sprays allocations until one lands on the old object,
	// filling it with a fake vtable pointer whose entry is evilEntry.
	landed := false
	for i := 0; i < 64 && !landed; i++ {
		buf, err := sys.Malloc(64)
		if err != nil {
			log.Fatal(err)
		}
		if buf.Base() == dangling.Base() {
			landed = true
		}
		// "Network input": a fake vtable. Word 0 (where the victim's
		// vtable pointer lived) becomes a pointer to offset +16,
		// where the attacker plants the evil destructor entry.
		if err := sys.Mem().StoreWord(buf, buf.Base()+16, evilEntry); err != nil {
			log.Fatal(err)
		}
		fake, err := buf.SetBounds(buf.Base()+16, 16)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Mem().StoreCap(buf, buf.Base(), fake); err != nil {
			log.Fatal(err)
		}
	}
	if !landed {
		fmt.Println("attacker could not reallocate over the victim (quarantine still holds it)")
		return
	}
	fmt.Println("attacker reallocated over the victim object")

	// Double delete through the dangling pointer: the program loads the
	// "vtable" and jumps through it.
	entry, err := destructorEntry(sys, dangling)
	switch {
	case err == nil && entry == evilEntry:
		fmt.Printf("ATTACK SUCCEEDED: control flow redirected to %#x\n", entry)
	case err == nil:
		fmt.Printf("attack failed silently: entry %#x\n", entry)
	case errors.Is(err, cap.ErrTagCleared):
		fmt.Println("ATTACK DEFEATED: dangling pointer was revoked; the double delete traps")
	default:
		fmt.Printf("attack stopped: %v\n", err)
	}
	fmt.Println()
}

func main() {
	insecure, err := core.New(core.Config{DirectFree: true})
	if err != nil {
		log.Fatal(err)
	}
	attack(insecure, "classic allocator (DirectFree: no quarantine, no revocation)")

	secure, err := core.New(core.Config{
		Policy: quarantine.Policy{Fraction: 0.25, MinBytes: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	attack(secure, "CHERIvoke (quarantine + shadow map + sweeping revocation)")
}
