// tuning explores CHERIvoke's central knob: the quarantine fraction, which
// trades heap growth for sweeping frequency (§3.1, §6.4, Figure 9).
//
// It replays the paper's worst-case workload (xalancbmk) at a range of
// quarantine fractions, printing the measured normalised execution time next
// to the analytic model's prediction (§6.1.3), and then inverts the model to
// answer the deployment question: "how much heap must I spend to keep
// overhead under X%?"
//
// Run with: go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/quarantine"
	"repro/internal/revoke"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	p, ok := workload.ByName("xalancbmk")
	if !ok {
		log.Fatal("xalancbmk profile missing")
	}
	machine := sim.X86()
	fmt.Printf("workload: %s — %.0f MiB/s freed, %.0f%% pages with pointers\n\n",
		p.Name, p.FreeRateMiB, p.PageDensity*100)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "quarantine\theap overhead\tmeasured time\tsweeps\tmodel (sweep only)")
	for _, fraction := range []float64{0.125, 0.25, 0.5, 1.0, 2.0} {
		sys, err := core.New(core.Config{
			Policy: quarantine.Policy{Fraction: fraction, MinBytes: 64 << 10},
			Revoke: revoke.Config{Kernel: sim.KernelVector, UseCapDirty: true, Launder: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := workload.Run(sys, p, workload.Options{MaxLiveBytes: 8 << 20, MinSweeps: 3})
		if err != nil {
			log.Fatal(err)
		}
		st := res.Sys.Stats()
		measured := 1 + (st.QuarantineSeconds-st.BaselineFreeCost+res.CacheEffectSeconds+
			st.ShadowSeconds+st.SweepSeconds)/res.AppSeconds
		predicted := 1 + model.PredictProfile(p, machine, sim.KernelVector, fraction)
		fmt.Fprintf(w, "%.1f%%\t%.0f%%\t%.3f\t%d\t%.3f\n",
			fraction*100, fraction*100, measured, st.Sweeps, predicted)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// Invert the model: quarantine fraction needed for target overheads.
	fmt.Println("\nmodel inversion — heap overhead needed to hold sweeping cost at a target:")
	scan := model.ScanRate(machine, sim.KernelVector)
	for _, target := range []float64{0.20, 0.10, 0.05, 0.02} {
		q := model.QuarantineFractionFor(target, p.FreeRateMiB*(1<<20), p.PageDensity, scan)
		fmt.Printf("  sweep overhead <= %2.0f%%  ->  quarantine %.0f%% of the heap\n", target*100, q*100)
	}
	fmt.Println("\n(the paper's default, 25%, holds the pure sweeping cost of even")
	fmt.Println(" xalancbmk under ~16%; the rest of its overhead is the quarantine")
	fmt.Println(" cache effect, which also shrinks as the quarantine grows — §6.4)")
}
