// vmdemo runs a small program on the capability register machine
// (internal/vm) twice — once per allocator — showing the same use-after-free
// bug exploited under the classic allocator and trapped under CHERIvoke,
// with a per-instruction trace of what the machine did.
//
// Run with: go run ./examples/vmdemo
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/quarantine"
	"repro/internal/vm"
)

// The program, in pseudo-C:
//
//	p = malloc(64);            // c1
//	q = p;                     // c2  (the bug: alias outlives the free)
//	*p = 1234;                 //
//	free(p);                   //
//	                           // (CHERIvoke: quarantine fills, sweep runs)
//	r = malloc(64);            // c3  (attacker reallocation over p)
//	*r = 0xbad;                //
//	x = *q;                    // use-after-free read
//	halt
var program = []vm.Instr{
	{Op: vm.OpMalloc, Cd: 1, Imm: 64},
	{Op: vm.OpMovC, Cd: 2, Ca: 1},
	{Op: vm.OpMovXI, Xd: 1, Imm: 1234},
	{Op: vm.OpStoreW, Ca: 1, Xa: 1},
	{Op: vm.OpFree, Ca: 1},
	{Op: vm.OpRevoke},
	{Op: vm.OpMalloc, Cd: 3, Imm: 64},
	{Op: vm.OpMovXI, Xd: 2, Imm: 0xbad},
	{Op: vm.OpStoreW, Ca: 3, Xa: 2},
	{Op: vm.OpLoadW, Xd: 3, Ca: 2},
	{Op: vm.OpHalt},
}

var listing = []string{
	"p = malloc(64)",
	"q = p            // bug: alias kept",
	"x1 = 1234",
	"*p = x1",
	"free(p)",
	"(revocation point)",
	"r = malloc(64)   // attacker reallocation",
	"x2 = 0xbad",
	"*r = x2",
	"x3 = *q          // use-after-free",
	"halt",
}

func run(label string, cfg core.Config) {
	fmt.Printf("--- %s ---\n", label)
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m := vm.New(sys)
	err = m.Run(program, 100)
	var trap *vm.Trap
	switch {
	case err == nil:
		fmt.Printf("program completed; x3 = %#x", m.X(3))
		if m.X(3) == 0xbad {
			fmt.Print("  <- read the attacker's reallocated data (exploit!)")
		}
		fmt.Println()
	case errors.As(err, &trap):
		fmt.Printf("program TRAPPED at pc=%d: %q\n", trap.PC, listing[trap.PC])
		if errors.Is(err, cap.ErrTagCleared) {
			fmt.Println("cause: capability tag cleared — the alias was revoked by the sweep")
		} else {
			fmt.Printf("cause: %v\n", trap.Err)
		}
	default:
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("(%d instructions, %d sweeps, %d capabilities revoked)\n\n",
		m.Steps(), st.Sweeps, st.CapsRevoked+st.RootsRevoked)
}

func main() {
	fmt.Println("program listing:")
	for i, l := range listing {
		fmt.Printf("  %2d: %s\n", i, l)
	}
	fmt.Println()
	run("classic allocator", core.Config{DirectFree: true})
	run("CHERIvoke", core.Config{
		Policy: quarantine.Policy{Fraction: 0.25, MinBytes: 1},
	})
}
