// Quickstart: the CHERIvoke lifecycle in one file.
//
// It allocates an object, stores data and a capability through it, frees it,
// forces a revocation sweep, and shows that every stale reference — held in
// a register root or in heap memory — is revoked, while the recycled memory
// is freshly usable through its new allocation's capability.
//
// Run with: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/cap"
	"repro/internal/core"
)

func main() {
	sys, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Allocate: Malloc returns a tagged capability bounded to exactly
	// this allocation. There is no other way to reach the memory.
	buf, err := sys.Malloc(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated: %v\n", buf)

	// Register the capability as a root: in real CHERI the register file
	// and stack are swept directly; the simulation sweeps what you
	// register.
	sys.AddRoot(&buf)

	// Use it: stores and loads are bounds- and permission-checked.
	if err := sys.Mem().StoreWord(buf, buf.Base(), 0x1234); err != nil {
		log.Fatal(err)
	}
	v, err := sys.Mem().LoadWord(buf, buf.Base())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored and loaded %#x through the capability\n", v)

	// Out-of-bounds access? Trapped by the architecture, not the
	// allocator.
	if err := sys.Mem().StoreWord(buf, buf.Base()+64, 1); errors.Is(err, cap.ErrBounds) {
		fmt.Println("out-of-bounds store trapped: spatial safety")
	}

	// Stash a second reference inside another heap object: a realistic
	// aliasing pattern the revoker must find.
	holder, err := sys.Malloc(32)
	if err != nil {
		log.Fatal(err)
	}
	sys.AddRoot(&holder)
	if err := sys.Mem().StoreCap(holder, holder.Base(), buf); err != nil {
		log.Fatal(err)
	}

	// Free: the chunk goes to quarantine — it is NOT reusable yet, and
	// stale capabilities still exist. That is safe: nothing else can be
	// allocated over it before the sweep (§3.7: CHERIvoke prevents
	// use-after-reallocation).
	if err := sys.Free(buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("freed: %d bytes in quarantine\n", sys.QuarantineBytes())

	// Revoke: paint the shadow map, sweep memory + roots, recycle.
	rep, err := sys.Revoke()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep: %d capabilities found, %d revoked in memory, %d in roots (simulated %.1fµs)\n",
		rep.Sweep.CapsFound, rep.Sweep.CapsRevoked, rep.Sweep.RegsRevoked, rep.SweepSeconds*1e6)

	// Every stale path is now dead.
	if _, err := sys.Mem().LoadWord(buf, buf.Base()); errors.Is(err, cap.ErrTagCleared) {
		fmt.Println("stale root capability: revoked")
	}
	inHeap, err := sys.Mem().LoadCap(holder, holder.Base())
	if err != nil {
		log.Fatal(err)
	}
	if !inHeap.Tag() {
		fmt.Println("stale heap-stored capability: revoked")
	}

	// The address is recycled — and perfectly safe to reuse.
	again, err := sys.Malloc(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reallocated the same chunk at %#x: fresh capability works: ", again.Base())
	if err := sys.Mem().StoreWord(again, again.Base(), 0x5678); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok")

	st := sys.Stats()
	fmt.Printf("\nstats: %d mallocs, %d frees, %d sweeps, %d capabilities revoked\n",
		st.Mallocs, st.Frees, st.Sweeps, st.CapsRevoked+st.RootsRevoked)
}
