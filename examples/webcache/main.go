// webcache is a longer-running, allocation-heavy scenario: an in-memory
// object cache (the kind of service the paper's introduction worries about —
// long-lived, network-facing, handling attacker-influenced input) running
// its entire heap under CHERIvoke with parallel sweeps.
//
// The cache churns: entries are inserted, looked up, evicted by LRU and
// replaced. Every eviction is a free; every insertion may reuse evicted
// space — exactly the reallocation pattern use-after-free exploits need.
// The demo shows the runtime revoking dangling entry references across many
// automatic sweeps, with the simulated-time accounting a deployment would
// use for capacity planning.
//
// Run with: go run ./examples/webcache
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/quarantine"
	"repro/internal/revoke"
	"repro/internal/sim"
)

// entry is one cached object: a capability to its value buffer plus LRU
// bookkeeping. The capability is registered as a root (it lives in the
// server's "registers/stack"); a second copy lives in the simulated index
// block to exercise heap sweeping.
type entry struct {
	key   uint64
	value cap.Capability
	tick  uint64
}

type cache struct {
	sys      *core.System
	index    cap.Capability // heap block holding capability copies
	entries  map[uint64]*entry
	capacity int
	tick     uint64

	evictions   uint64
	danglingHit uint64
}

func newCache(sys *core.System, capacity int) (*cache, error) {
	// The index block holds one capability slot per cache slot.
	index, err := sys.Malloc(uint64(capacity) * 16)
	if err != nil {
		return nil, err
	}
	c := &cache{sys: sys, index: index, entries: make(map[uint64]*entry), capacity: capacity}
	sys.AddRoot(&c.index)
	return c, nil
}

func (c *cache) slotAddr(key uint64) uint64 {
	return c.index.Base() + key%uint64(c.capacity)*16
}

// put inserts a value of the given size, evicting the LRU entry when full.
func (c *cache) put(key uint64, size uint64) error {
	c.tick++
	if old, ok := c.entries[key]; ok {
		if err := c.evict(old); err != nil {
			return err
		}
	}
	for len(c.entries) >= c.capacity {
		var lru *entry
		for _, e := range c.entries {
			if lru == nil || e.tick < lru.tick {
				lru = e
			}
		}
		if err := c.evict(lru); err != nil {
			return err
		}
	}
	v, err := c.sys.Malloc(size)
	if err != nil {
		return err
	}
	// Fill the buffer ("response body") and publish the capability into
	// the index block: a heap-resident alias the sweeper must track.
	if err := c.sys.Mem().StoreWord(v, v.Base(), key); err != nil {
		return err
	}
	if err := c.sys.Mem().StoreCap(c.index, c.slotAddr(key), v); err != nil {
		return err
	}
	e := &entry{key: key, value: v, tick: c.tick}
	c.sys.AddRoot(&e.value)
	c.entries[key] = e
	return nil
}

// get looks a key up THROUGH THE HEAP INDEX (the alias), so stale index
// slots surface as revoked capabilities, never as wrong data.
func (c *cache) get(key uint64) (uint64, error) {
	c.tick++
	e, ok := c.entries[key]
	if !ok {
		return 0, errors.New("miss")
	}
	e.tick = c.tick
	v, err := c.sys.Mem().LoadCap(c.index, c.slotAddr(key))
	if err != nil {
		return 0, err
	}
	if !v.Tag() {
		// The slot's capability was revoked (its entry was evicted
		// and swept, and the slot aliases another key's slot).
		c.danglingHit++
		return 0, errors.New("stale slot: revoked capability")
	}
	return c.sys.Mem().LoadWord(v, v.Base())
}

func (c *cache) evict(e *entry) error {
	delete(c.entries, e.key)
	c.sys.RemoveRoot(&e.value)
	if err := c.sys.Free(e.value); err != nil {
		return err
	}
	c.evictions++
	return nil
}

func main() {
	sys, err := core.New(core.Config{
		Policy: quarantine.Policy{Fraction: 0.25, MinBytes: 256 << 10},
		Revoke: revoke.Config{
			Kernel:       sim.KernelVector,
			UseCapDirty:  true,
			UseCLoadTags: true,
			Shards:       4, // §3.5: the sweep is embarrassingly parallel
			Launder:      true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	c, err := newCache(sys, 512)
	if err != nil {
		log.Fatal(err)
	}

	// Serve "requests": a deterministic churn of puts and gets with a
	// skewed key distribution.
	rng := uint64(0x2545F4914F6CDD1D)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var hits, misses uint64
	const requests = 30000
	for i := 0; i < requests; i++ {
		key := next() % 2048
		if next()%3 == 0 {
			size := 256 + next()%4096
			if err := c.put(key, size); err != nil {
				log.Fatal(err)
			}
		} else {
			if _, err := c.get(key); err != nil {
				misses++
			} else {
				hits++
			}
		}
	}

	st := sys.Stats()
	fmt.Printf("served %d requests: %d hits, %d misses (%d stale slots caught as revoked)\n",
		requests, hits, misses, c.danglingHit)
	fmt.Printf("allocator: %d mallocs, %d frees (evictions: %d)\n", st.Mallocs, st.Frees, c.evictions)
	fmt.Printf("revocation: %d automatic sweeps, %d capabilities revoked (%d root, %d heap)\n",
		st.Sweeps, st.CapsRevoked+st.RootsRevoked, st.RootsRevoked, st.CapsRevoked)
	fmt.Printf("heap: %.2f MiB live, %.2f MiB quarantined, %.2f MiB footprint (incl. %.0f KiB shadow map)\n",
		mib(sys.LiveBytes()), mib(sys.QuarantineBytes()), mib(sys.MemoryFootprint()),
		float64(sys.Shadow().SizeBytes())/1024)
	fmt.Printf("simulated time budget: %.2f ms sweeping, %.2f ms shadow maintenance, %.3f ms quarantine ops\n",
		st.SweepSeconds*1e3, st.ShadowSeconds*1e3, st.QuarantineSeconds*1e3)
	if last := st.LastSweep; last.PagesTotal > 0 {
		fmt.Printf("last sweep: %d/%d pages (CapDirty), %d/%d lines read (CLoadTags), %d caps found\n",
			last.PagesSwept, last.PagesTotal, last.LinesSwept, last.LinesSwept+last.LinesSkipped, last.CapsFound)
	}
}

func mib(b uint64) float64 { return float64(b) / (1 << 20) }
